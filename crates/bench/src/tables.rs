//! Report generators: one function per table/figure of the paper.
//!
//! Every generator returns a [`Report`] holding both the formatted text
//! table and a machine-readable JSON value (written next to the text by the
//! `tables` binary so EXPERIMENTS.md numbers stay auditable).

use pka_baselines::{FirstN, SingleIteration, TbPoint, TbPointConfig};
use pka_core::{PkaError, PkpConfig, PkpMonitor};
use pka_gpu::{GpuConfig, KernelId};
use pka_sim::cost::{format_duration, projected_sim_seconds, SECONDS_PER_HOUR};
use pka_sim::{SimOptions, Simulator};
use pka_stats::error::{abs_pct_error, mean_abs_error};
use pka_stats::summary::{geomean, mean};
use pka_workloads::{all_workloads, classic_workloads, Suite, Workload};
use serde_json::{json, Value};

use crate::ExperimentRunner;

/// The "first 1B instructions" budget, scaled to this study's workload
/// magnitudes the same way 10⁹ relates to the paper's (its classic
/// workloads run tens of billions of instructions; ours run tens of
/// millions).
pub const FIRST_N_BUDGET: u64 = 2_000_000;

/// Kernel-count ceiling for TBPoint's quadratic clustering.
const TBPOINT_MAX_KERNELS: u64 = 2_000;

/// One generated report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Short identifier (`fig7`, `table4`, …).
    pub name: String,
    /// Formatted text table.
    pub text: String,
    /// Machine-readable record set.
    pub data: Value,
}

/// Absolute IPC error (percent) of a method that projected
/// `projected_cycles` for work whose silicon took `silicon_cycles`, with
/// identical instruction totals.
fn ipc_error_pct(projected_cycles: u64, silicon_cycles: u64) -> f64 {
    if projected_cycles == 0 {
        return f64::INFINITY;
    }
    // IPC_m / IPC_si = silicon_cycles / projected_cycles.
    (silicon_cycles as f64 / projected_cycles as f64 - 1.0).abs() * 100.0
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

/// Figure 1: silicon runtime, projected simulation time and detailed
/// profiling time for all 147 workloads.
///
/// # Errors
///
/// Propagates silicon-model failures.
pub fn fig1(runner: &ExperimentRunner) -> Result<Report, PkaError> {
    let gpu = GpuConfig::v100();
    let mut rows = Vec::new();
    for w in all_workloads() {
        let silicon = runner.silicon(&w, &gpu)?;
        let sim_seconds = projected_sim_seconds(silicon.total_cycles);
        let profiling = runner.volta().profiler().profiling_cost(&w);
        rows.push((
            w.name().to_string(),
            w.suite().to_string(),
            silicon.total_seconds,
            sim_seconds,
            profiling.detailed_seconds(),
        ));
    }
    rows.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));

    let mut text = String::from(
        "Figure 1: execution time per workload (147 workloads, V100)\n\
         workload                          suite      silicon      simulation     profiling\n",
    );
    for (name, suite, si, sim, prof) in &rows {
        text.push_str(&format!(
            "{name:<33} {suite:<10} {:>12} {:>14} {:>13}\n",
            format_duration(*si),
            format_duration(*sim),
            format_duration(*prof),
        ));
    }
    let max_sim = rows.iter().map(|r| r.3).fold(0.0f64, f64::max);
    text.push_str(&format!(
        "\nslowest simulation: {} (the paper's century band)\n",
        format_duration(max_sim)
    ));
    let data = rows
        .iter()
        .map(|(name, suite, si, sim, prof)| {
            json!({"workload": name, "suite": suite, "silicon_s": si,
                   "simulation_s": sim, "profiling_s": prof})
        })
        .collect();
    Ok(Report {
        name: "fig1".into(),
        text,
        data: Value::Array(data),
    })
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// Table 3: Principal Kernel Selection output examples — selected kernel
/// ids and group populations.
///
/// # Errors
///
/// Propagates profiling and clustering failures.
pub fn table3(runner: &ExperimentRunner) -> Result<Report, PkaError> {
    let names = [
        "gauss_208",
        "bfs65536",
        "histo",
        "cutcp",
        "fdtd2d",
        "gramschmidt",
        "cutlass_wgemm_2560x128x2560",
        "cutlass_sgemm_4096x4096x4096",
    ];
    let all = all_workloads();
    let mut text = String::from(
        "Table 3: Principal Kernel Selection output (target error 5%)\n\
         workload                         selected kernel ids          group counts\n",
    );
    let mut data = Vec::new();
    for name in names {
        let w = all.iter().find(|w| w.name() == name).expect("known workload");
        let sel = runner.selection(w)?;
        let ids: Vec<String> = sel
            .representative_ids()
            .iter()
            .map(|id| id.to_string())
            .collect();
        let counts: Vec<String> = sel.groups().iter().map(|g| g.count().to_string()).collect();
        text.push_str(&format!(
            "{name:<32} {:<28} {}\n",
            ids.join(","),
            counts.join(","),
        ));
        data.push(json!({"workload": name,
                          "selected": sel.representative_ids().iter().map(|i| i.index()).collect::<Vec<_>>(),
                          "counts": sel.groups().iter().map(|g| g.count()).collect::<Vec<_>>(),
                          "error_pct": sel.error_pct()}));
    }
    Ok(Report {
        name: "table3".into(),
        text,
        data: Value::Array(data),
    })
}

// ---------------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------------

/// Figure 4: per-group kernel-name composition after PKS on ResNet.
///
/// # Errors
///
/// Propagates profiling and clustering failures.
pub fn fig4(runner: &ExperimentRunner) -> Result<Report, PkaError> {
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name() == "mlperf_resnet50_64b_infer")
        .expect("resnet exists");
    let sel = runner.selection(&w)?;
    // ResNet profiles in one level, so labels cover the whole stream; for a
    // two-level workload they would cover only the detailed prefix, and the
    // header below would say so.
    let labels = sel.labels();
    let coverage = labels.len() as u64;
    let mut composition: Vec<std::collections::BTreeMap<String, u64>> =
        vec![Default::default(); sel.k()];
    for (i, &g) in labels.iter().enumerate() {
        let name = w.kernel(KernelId::new(i as u64)).name().to_string();
        *composition[g].entry(name).or_insert(0) += 1;
    }
    let mut text = format!(
        "Figure 4: per-group kernel composition after PKS on {} ({} groups, \
         composition from {coverage} of {} launches)\n",
        w.name(),
        sel.k(),
        w.kernel_count(),
    );
    for (g, names) in composition.iter().enumerate() {
        text.push_str(&format!("group {g} ({} kernels):\n", sel.groups()[g].count()));
        for (name, count) in names {
            text.push_str(&format!("    {name:<24} x{count}\n"));
        }
    }
    let data = composition
        .iter()
        .enumerate()
        .map(|(g, names)| json!({"group": g, "composition": names}))
        .collect();
    Ok(Report {
        name: "fig4".into(),
        text,
        data: Value::Array(data),
    })
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// Figure 5: IPC / L2-miss / DRAM-util time series with PKP stopping points
/// at s ∈ {2.5, 0.25, 0.025}, for a regular workload (atax) and an
/// irregular one (BFS).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn fig5() -> Result<Report, PkaError> {
    let gpu = GpuConfig::v100();
    let options = SimOptions::default().with_sample_interval(100)?;
    let sim = Simulator::new(gpu, options);
    let all = all_workloads();
    let atax = all.iter().find(|w| w.name() == "atax").expect("exists");
    let bfs = all.iter().find(|w| w.name() == "bfs1MW").expect("exists");

    let mut text = String::from("Figure 5: PKP stopping points vs threshold s\n");
    let mut data = Vec::new();
    for (label, workload, id) in [("atax (regular)", atax, 0u64), ("bfs (irregular)", bfs, 8u64)] {
        let kernel = workload.kernel(KernelId::new(id));
        let full = sim.run_kernel(&kernel)?;
        text.push_str(&format!(
            "\n{label}: kernel `{}`, {} cycles total\n  cycle      ipc   l2miss%   dram%\n",
            kernel.name(),
            full.cycles
        ));
        let step = (full.ipc_series.len() / 18).max(1);
        for s in full.ipc_series.iter().step_by(step) {
            text.push_str(&format!(
                "  {:>6} {:>8.1} {:>8.1} {:>7.1}\n",
                s.cycle, s.ipc, s.l2_miss_pct, s.dram_util_pct
            ));
        }
        let mut stops = Vec::new();
        for threshold in [2.5, 0.25, 0.025] {
            let mut monitor = PkpMonitor::new(
                PkpConfig::default().with_threshold(threshold),
                options.sample_interval(),
            );
            let r = sim.run_kernel_monitored(&kernel, &mut monitor)?;
            let stop = monitor.stopped_at();
            let err = abs_pct_error(r.projected_total_cycles() as f64, full.cycles as f64);
            text.push_str(&format!(
                "  s = {threshold:<6} stop at {:>9}  projection error {err:>5.1}%  speedup {:>6.1}x\n",
                stop.map_or("(never)".to_string(), |c| c.to_string()),
                full.cycles as f64 / r.cycles.max(1) as f64,
            ));
            stops.push(json!({"s": threshold, "stop_cycle": stop, "error_pct": err}));
        }
        data.push(json!({"workload": label, "kernel": kernel.name(),
                          "full_cycles": full.cycles, "stops": stops,
                          "series": full.ipc_series.iter().step_by(step).map(|s|
                              json!({"cycle": s.cycle, "ipc": s.ipc,
                                     "l2_miss_pct": s.l2_miss_pct,
                                     "dram_util_pct": s.dram_util_pct})).collect::<Vec<_>>()}));
    }
    Ok(Report {
        name: "fig5".into(),
        text,
        data: Value::Array(data),
    })
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

/// Figure 6: simulation time per workload under full simulation, PKS, and
/// PKA.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn fig6(runner: &ExperimentRunner) -> Result<Report, PkaError> {
    let gpu = GpuConfig::v100();
    let mut rows = Vec::new();
    for w in all_workloads() {
        let silicon = runner.silicon(&w, &gpu)?;
        let sampled = runner.sampled(&w, &gpu)?;
        let full_h = projected_sim_seconds(silicon.total_cycles) / SECONDS_PER_HOUR;
        let pks_h = projected_sim_seconds(sampled.pks_simulated_cycles) / SECONDS_PER_HOUR;
        let pka_h = projected_sim_seconds(sampled.pka_simulated_cycles) / SECONDS_PER_HOUR;
        rows.push((w.name().to_string(), full_h, pks_h, pka_h));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let mut text = String::from(
        "Figure 6: simulation time (hours, log-banded) — full vs PKS vs PKA\n\
         workload                              full           PKS           PKA\n",
    );
    for (name, f, s, a) in &rows {
        text.push_str(&format!(
            "{name:<33} {:>12} {:>13} {:>13}\n",
            format_duration(f * SECONDS_PER_HOUR),
            format_duration(s * SECONDS_PER_HOUR),
            format_duration(a * SECONDS_PER_HOUR),
        ));
    }
    let worst_pka = rows.iter().map(|r| r.3).fold(0.0f64, f64::max);
    text.push_str(&format!(
        "\nevery workload under PKA simulates within {}\n",
        format_duration(worst_pka * SECONDS_PER_HOUR)
    ));
    let data = rows
        .iter()
        .map(|(n, f, s, a)| json!({"workload": n, "full_h": f, "pks_h": s, "pka_h": a}))
        .collect();
    Ok(Report {
        name: "fig6".into(),
        text,
        data: Value::Array(data),
    })
}

// ---------------------------------------------------------------------------
// Figures 7 and 8
// ---------------------------------------------------------------------------

/// The workload set for the prior-work comparison: classic workloads that
/// complete in full simulation and fit TBPoint's clustering.
pub fn comparison_set(runner: &ExperimentRunner) -> Vec<Workload> {
    classic_workloads()
        .into_iter()
        .filter(|w| runner.fullsim_tractable(w) && w.kernel_count() <= TBPOINT_MAX_KERNELS)
        .collect()
}

/// Figures 7 and 8: simulation-time speedup and absolute IPC error of PKA,
/// TBPoint and first-N-instructions against full simulation.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn fig7_fig8(runner: &ExperimentRunner) -> Result<Report, PkaError> {
    let gpu = GpuConfig::v100();
    let sim_options = runner.options().pka.sim_options();
    let tbpoint = TbPoint::new(
        gpu.clone(),
        sim_options,
        TbPointConfig {
            max_kernels: TBPOINT_MAX_KERNELS,
            ..TbPointConfig::default()
        },
    );
    let firstn = FirstN::new(gpu.clone(), sim_options, FIRST_N_BUDGET);

    let mut rows = Vec::new();
    for w in comparison_set(runner) {
        let silicon = runner.silicon(&w, &gpu)?;
        let Some(full) = runner.fullsim(&w, &gpu)? else {
            continue;
        };
        let sampled = runner.sampled(&w, &gpu)?;
        let tb = tbpoint.evaluate(&w)?;
        let fnr = firstn.evaluate(&w)?;

        rows.push(json!({
            "workload": w.name(),
            "fullsim": {
                "speedup": 1.0,
                "ipc_error_pct": ipc_error_pct(full.cycles, silicon.total_cycles),
            },
            "pka": {
                "speedup": full.cycles as f64 / sampled.pka_simulated_cycles.max(1) as f64,
                "ipc_error_pct": ipc_error_pct(sampled.pka_projected_cycles, silicon.total_cycles),
            },
            "tbpoint": {
                "speedup": full.cycles as f64 / tb.simulated_cycles.max(1) as f64,
                "ipc_error_pct": ipc_error_pct(tb.projected_cycles, silicon.total_cycles),
            },
            "first_n": {
                "speedup": full.cycles as f64 / fnr.simulated_cycles.max(1) as f64,
                "ipc_error_pct": ipc_error_pct(fnr.projected_cycles, silicon.total_cycles),
            },
        }));
    }

    let series = |method: &str, field: &str| -> Vec<f64> {
        rows.iter()
            .map(|r| r[method][field].as_f64().expect("numeric"))
            .collect()
    };
    let mut text = format!(
        "Figures 7 & 8: prior-work comparison over {} fully-simulable workloads\n\n",
        rows.len()
    );
    text.push_str("Figure 7 (simulation speedup over full simulation, geomean):\n");
    for method in ["pka", "tbpoint", "first_n"] {
        text.push_str(&format!(
            "  {:<8} {:>7.2}x\n",
            method,
            geomean(&series(method, "speedup"))
        ));
    }
    text.push_str("\nFigure 8 (mean absolute IPC error vs silicon, %):\n");
    for method in ["fullsim", "first_n", "pka", "tbpoint"] {
        text.push_str(&format!(
            "  {:<8} {:>7.2}%\n",
            method,
            mean(&series(method, "ipc_error_pct"))
        ));
    }
    let pka_su = geomean(&series("pka", "speedup"));
    let tb_su = geomean(&series("tbpoint", "speedup"));
    text.push_str(&format!(
        "\nPKA needs {:.2}x less simulation than TBPoint (paper: 2.19x)\n",
        pka_su / tb_su
    ));
    Ok(Report {
        name: "fig7_fig8".into(),
        text,
        data: Value::Array(rows),
    })
}

// ---------------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------------

/// Table 4: the full per-application evaluation — silicon PKS across three
/// generations, simulation error/speedup for PKS and PKA, and DRAM
/// utilisation projection.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn table4(runner: &ExperimentRunner) -> Result<Report, PkaError> {
    let volta = GpuConfig::v100();
    let turing = GpuConfig::rtx2060();
    let ampere = GpuConfig::rtx3070();

    let mut rows = Vec::new();
    for w in all_workloads() {
        // The paper excludes myocyte (kernel-count mismatch across runs).
        if w.name() == "myocyte" {
            rows.push(json!({"workload": w.name(), "suite": w.suite().to_string(),
                              "excluded": true}));
            continue;
        }
        let selection = runner.selection(&w)?;
        let is_mlperf = w.suite() == Suite::MlPerf;

        // Silicon PKS columns per generation (MLPerf fits only the V100).
        let mut silicon_cols = serde_json::Map::new();
        let gens: &[&GpuConfig] = if is_mlperf {
            &[&volta]
        } else {
            &[&volta, &turing, &ampere]
        };
        for gpu in gens {
            let silicon = runner.silicon(&w, gpu)?;
            let profiler = pka_profile::Profiler::new((*gpu).clone());
            let mut projected = Vec::with_capacity(selection.k());
            let mut rep_seconds = 0.0;
            for id in selection.representative_ids() {
                let rec = profiler.detailed(&w, id.index()..id.index() + 1)?;
                projected.push(rec[0].cycles);
                rep_seconds += rec[0].seconds;
            }
            let proj = selection.project_with(&projected);
            silicon_cols.insert(
                gpu.name().to_string(),
                json!({
                    "error_pct": abs_pct_error(proj as f64, silicon.total_cycles as f64),
                    "speedup": silicon.total_seconds / rep_seconds.max(1e-12),
                }),
            );
        }

        // Simulation columns (Volta model).
        let silicon = runner.silicon(&w, &volta)?;
        let full = runner.fullsim(&w, &volta)?;
        let sampled = runner.sampled(&w, &volta)?;
        let pks_hours = projected_sim_seconds(sampled.pks_simulated_cycles) / SECONDS_PER_HOUR;
        let pka_hours = projected_sim_seconds(sampled.pka_simulated_cycles) / SECONDS_PER_HOUR;
        rows.push(json!({
            "workload": w.name(),
            "suite": w.suite().to_string(),
            "kernels": w.kernel_count(),
            "k": selection.k(),
            "silicon": silicon_cols,
            "sim_error_pct": full.map(|f| abs_pct_error(f.cycles as f64, silicon.total_cycles as f64)),
            "pks_error_pct": abs_pct_error(sampled.pks_projected_cycles as f64, silicon.total_cycles as f64),
            "pks_hours": pks_hours,
            "pka_error_pct": abs_pct_error(sampled.pka_projected_cycles as f64, silicon.total_cycles as f64),
            "pka_hours": pka_hours,
            "pks_speedup": full.map_or(
                silicon.total_cycles as f64 / sampled.pks_simulated_cycles.max(1) as f64,
                |f| f.cycles as f64 / sampled.pks_simulated_cycles.max(1) as f64),
            "pka_speedup": full.map_or(
                silicon.total_cycles as f64 / sampled.pka_simulated_cycles.max(1) as f64,
                |f| f.cycles as f64 / sampled.pka_simulated_cycles.max(1) as f64),
            "dram_full_pct": full.map(|f| f.dram_util_pct),
            "dram_pka_pct": sampled.pka_dram_util_pct,
        }));
    }

    // Format.
    let mut text = String::from(
        "Table 4: cycle error and speedup for PKS (silicon, three generations) and PKS/PKA (simulation)\n\
         workload                        | V err%   SU | T err%   SU | A err%   SU | Sim% | PKS%  h(SU)       | PKA%  h(SU)       | DRAM f/pka\n",
    );
    let fmt_gen = |r: &Value, gpu: &str| -> String {
        match r["silicon"].get(gpu) {
            Some(g) => format!(
                "{:>6.1} {:>5.1}",
                g["error_pct"].as_f64().unwrap_or(0.0),
                g["speedup"].as_f64().unwrap_or(0.0)
            ),
            None => format!("{:>6} {:>5}", "*", "*"),
        }
    };
    let mut current_suite = String::new();
    let mut suite_rows: Vec<&Value> = Vec::new();
    let mut all_text_rows = String::new();
    let flush_suite =
        |suite: &str, rows: &[&Value], out: &mut String| {
            if rows.is_empty() {
                return;
            }
            let errs: Vec<f64> = rows
                .iter()
                .filter_map(|r| r["silicon"]["V100"]["error_pct"].as_f64())
                .collect();
            let sus: Vec<f64> = rows
                .iter()
                .filter_map(|r| r["silicon"]["V100"]["speedup"].as_f64())
                .collect();
            out.push_str(&format!(
                "  -- {suite}: silicon PKS mean error {:.1}%, geomean speedup {:.1}x --\n",
                mean(&errs),
                geomean(&sus)
            ));
        };
    for r in &rows {
        let suite = r["suite"].as_str().unwrap_or("");
        if suite != current_suite {
            flush_suite(&current_suite, &suite_rows, &mut all_text_rows);
            suite_rows.clear();
            current_suite = suite.to_string();
        }
        if r.get("excluded").is_some() {
            all_text_rows.push_str(&format!(
                "{:<31} | {:>12} (excluded: kernel-count mismatch)\n",
                r["workload"].as_str().unwrap_or(""),
                "*"
            ));
            continue;
        }
        suite_rows.push(r);
        all_text_rows.push_str(&format!(
            "{:<31} | {} | {} | {} | {:>4} | {:>5.1} {:>10} | {:>5.1} {:>10} | {}/{:.1}\n",
            r["workload"].as_str().unwrap_or(""),
            fmt_gen(r, "V100"),
            fmt_gen(r, "RTX2060"),
            fmt_gen(r, "RTX3070"),
            r["sim_error_pct"]
                .as_f64()
                .map_or("*".to_string(), |e| format!("{e:.0}")),
            r["pks_error_pct"].as_f64().unwrap_or(0.0),
            format!(
                "{:.2}h({:.0}x)",
                r["pks_hours"].as_f64().unwrap_or(0.0),
                r["pks_speedup"].as_f64().unwrap_or(0.0)
            ),
            r["pka_error_pct"].as_f64().unwrap_or(0.0),
            format!(
                "{:.2}h({:.0}x)",
                r["pka_hours"].as_f64().unwrap_or(0.0),
                r["pka_speedup"].as_f64().unwrap_or(0.0)
            ),
            r["dram_full_pct"]
                .as_f64()
                .map_or("*".to_string(), |d| format!("{d:.1}")),
            r["dram_pka_pct"].as_f64().unwrap_or(0.0),
        ));
    }
    flush_suite(&current_suite, &suite_rows, &mut all_text_rows);
    text.push_str(&all_text_rows);
    Ok(Report {
        name: "table4".into(),
        text,
        data: Value::Array(rows),
    })
}

// ---------------------------------------------------------------------------
// Figure 9
// ---------------------------------------------------------------------------

/// Figure 9: V100-over-RTX2060 speedup as seen by silicon, full
/// simulation, first-N and PKA.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn fig9(runner: &ExperimentRunner) -> Result<Report, PkaError> {
    let v100 = GpuConfig::v100();
    let t2060 = GpuConfig::rtx2060();
    let sim_options = runner.options().pka.sim_options();
    let firstn_v = FirstN::new(v100.clone(), sim_options, FIRST_N_BUDGET);
    let firstn_t = FirstN::new(t2060.clone(), sim_options, FIRST_N_BUDGET);

    let seconds = |cycles: u64, gpu: &GpuConfig| cycles as f64 / gpu.core_clock_hz();

    let mut rows = Vec::new();
    for w in comparison_set(runner) {
        let (Some(full_v), Some(full_t)) =
            (runner.fullsim(&w, &v100)?, runner.fullsim(&w, &t2060)?)
        else {
            continue;
        };
        let si_v = runner.silicon(&w, &v100)?;
        let si_t = runner.silicon(&w, &t2060)?;
        let sa_v = runner.sampled(&w, &v100)?;
        let sa_t = runner.sampled(&w, &t2060)?;
        let fn_v = firstn_v.evaluate(&w)?;
        let fn_t = firstn_t.evaluate(&w)?;
        rows.push(json!({
            "workload": w.name(),
            "silicon": si_t.total_seconds / si_v.total_seconds,
            "fullsim": seconds(full_t.cycles, &t2060) / seconds(full_v.cycles, &v100),
            "first_n": seconds(fn_t.projected_cycles, &t2060) / seconds(fn_v.projected_cycles, &v100),
            "pka": seconds(sa_t.pka_projected_cycles, &t2060) / seconds(sa_v.pka_projected_cycles, &v100),
        }));
    }
    let series = |m: &str| -> Vec<f64> {
        rows.iter().map(|r| r[m].as_f64().expect("numeric")).collect()
    };
    let mut text = format!(
        "Figure 9: V100 speedup over RTX 2060 ({} workloads, geomeans)\n",
        rows.len()
    );
    for m in ["silicon", "fullsim", "first_n", "pka"] {
        text.push_str(&format!("  {m:<8} {:>6.2}x\n", geomean(&series(m))));
    }
    Ok(Report {
        name: "fig9".into(),
        text,
        data: Value::Array(rows),
    })
}

// ---------------------------------------------------------------------------
// Figure 10
// ---------------------------------------------------------------------------

/// Figure 10: 80-SM-over-40-SM V100 speedup as seen by silicon, full
/// simulation, first-N and PKA, with MAE versus silicon; MLPerf workloads
/// are covered by PKA alone (no full simulation exists for them).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn fig10(runner: &ExperimentRunner) -> Result<Report, PkaError> {
    let full_gpu = GpuConfig::v100();
    let half_gpu = GpuConfig::v100_half_sms();
    let sim_options = runner.options().pka.sim_options();
    let firstn_full = FirstN::new(full_gpu.clone(), sim_options, FIRST_N_BUDGET);
    let firstn_half = FirstN::new(half_gpu.clone(), sim_options, FIRST_N_BUDGET);

    let mut rows = Vec::new();
    for w in comparison_set(runner) {
        let (Some(fs_full), Some(fs_half)) = (
            runner.fullsim(&w, &full_gpu)?,
            runner.fullsim(&w, &half_gpu)?,
        ) else {
            continue;
        };
        let si_f = runner.silicon(&w, &full_gpu)?;
        let si_h = runner.silicon(&w, &half_gpu)?;
        let sa_f = runner.sampled(&w, &full_gpu)?;
        let sa_h = runner.sampled(&w, &half_gpu)?;
        let fn_f = firstn_full.evaluate(&w)?;
        let fn_h = firstn_half.evaluate(&w)?;
        rows.push(json!({
            "workload": w.name(),
            "silicon": si_h.total_cycles as f64 / si_f.total_cycles as f64,
            "fullsim": fs_half.cycles as f64 / fs_full.cycles as f64,
            "first_n": fn_h.projected_cycles as f64 / fn_f.projected_cycles.max(1) as f64,
            "pka": sa_h.pka_projected_cycles as f64 / sa_f.pka_projected_cycles.max(1) as f64,
        }));
    }
    // MLPerf: PKA-only speedup error versus silicon (paper: < 10%).
    let mut mlperf_rows = Vec::new();
    for w in all_workloads().into_iter().filter(|w| w.suite() == Suite::MlPerf) {
        let si_f = runner.silicon(&w, &full_gpu)?;
        let si_h = runner.silicon(&w, &half_gpu)?;
        let sa_f = runner.sampled(&w, &full_gpu)?;
        let sa_h = runner.sampled(&w, &half_gpu)?;
        let silicon = si_h.total_cycles as f64 / si_f.total_cycles as f64;
        let pka = sa_h.pka_projected_cycles as f64 / sa_f.pka_projected_cycles.max(1) as f64;
        mlperf_rows.push(json!({"workload": w.name(), "silicon": silicon, "pka": pka,
                                 "speedup_error_pct": ((pka - silicon) / silicon * 100.0).abs()}));
    }

    let series = |m: &str| -> Vec<f64> {
        rows.iter().map(|r| r[m].as_f64().expect("numeric")).collect()
    };
    let silicon = series("silicon");
    let mut text = format!(
        "Figure 10: speedup of 80 SMs over 40 SMs on V100 ({} workloads)\n",
        rows.len()
    );
    for m in ["silicon", "fullsim", "first_n", "pka"] {
        let s = series(m);
        if m == "silicon" {
            text.push_str(&format!("  {m:<8} geomean {:>5.2}x\n", geomean(&s)));
        } else {
            text.push_str(&format!(
                "  {m:<8} geomean {:>5.2}x   MAE vs silicon {:>5.2}\n",
                geomean(&s),
                mean_abs_error(&s, &silicon)
            ));
        }
    }
    text.push_str("\nMLPerf (PKA only; no full simulation exists):\n");
    for r in &mlperf_rows {
        text.push_str(&format!(
            "  {:<28} silicon {:>5.2}x  pka {:>5.2}x  |err| {:>4.1}%\n",
            r["workload"].as_str().unwrap_or(""),
            r["silicon"].as_f64().unwrap_or(0.0),
            r["pka"].as_f64().unwrap_or(0.0),
            r["speedup_error_pct"].as_f64().unwrap_or(0.0),
        ));
    }
    Ok(Report {
        name: "fig10".into(),
        text,
        data: json!({"classic": rows, "mlperf": mlperf_rows}),
    })
}

// ---------------------------------------------------------------------------
// Single-iteration case study (Section 6)
// ---------------------------------------------------------------------------

/// Section 6: single-iteration scaling versus PKA on ResNet — comparable
/// accuracy, far more simulation.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn single_iteration_study(runner: &ExperimentRunner) -> Result<Report, PkaError> {
    let gpu = GpuConfig::v100();
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name() == "mlperf_resnet50_64b_infer")
        .expect("resnet exists");
    let silicon = runner.silicon(&w, &gpu)?;
    let sampled = runner.sampled(&w, &gpu)?;
    let single = SingleIteration::new(gpu, runner.options().pka.sim_options()).evaluate(&w)?;

    let pks_ratio = single.simulated_cycles as f64 / sampled.pks_simulated_cycles.max(1) as f64;
    let pka_ratio = single.simulated_cycles as f64 / sampled.pka_simulated_cycles.max(1) as f64;
    let text = format!(
        "Section 6 case study: single-iteration scaling vs PKA on {}\n\
         single-iteration: error {:>5.1}%  simulated {:>12} cycles\n\
         PKS:              error {:>5.1}%  simulated {:>12} cycles ({pks_ratio:.1}x less than single-iteration)\n\
         PKA:              error {:>5.1}%  simulated {:>12} cycles ({pka_ratio:.1}x less than single-iteration)\n\
         (paper: single-iteration needs ~3x the simulation of PKS and ~48x that of PKA at comparable accuracy)\n",
        w.name(),
        single.error_pct,
        single.simulated_cycles,
        abs_pct_error(sampled.pks_projected_cycles as f64, silicon.total_cycles as f64),
        sampled.pks_simulated_cycles,
        abs_pct_error(sampled.pka_projected_cycles as f64, silicon.total_cycles as f64),
        sampled.pka_simulated_cycles,
    );
    let data = json!({
        "single_iteration": {"error_pct": single.error_pct, "simulated_cycles": single.simulated_cycles},
        "pks": {"simulated_cycles": sampled.pks_simulated_cycles},
        "pka": {"simulated_cycles": sampled.pka_simulated_cycles},
        "single_vs_pks": pks_ratio,
        "single_vs_pka": pka_ratio,
    });
    Ok(Report {
        name: "single_iter".into(),
        text,
        data,
    })
}
