//! The `tables` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! tables [--quick] [--fast-math] [--out DIR] [--workers N]
//!        [--trace-out PATH] [--metrics-out PATH] [-v] [REPORT...]
//! ```
//!
//! `REPORT` is any of `fig1 table3 fig4 fig5 fig6 fig7 fig8 table4 fig9
//! fig10 single_iter` or `all` (the default). `--quick` shrinks the
//! full-simulation budget for smoke runs. Each report's text is printed to
//! stdout and its JSON record set written to `DIR` (default
//! `results/`).
//!
//! The observability flags mirror the `pka` binary: `--trace-out` appends
//! JSONL span/event records, `--metrics-out` writes a `run_manifest.json`
//! whose checksums section carries an FNV-1a digest of each generated
//! report's JSON payload, and `-v` prints a stage summary to stderr.
//! Collection never changes report contents.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use pka_bench::{tables, ExperimentRunner, RunnerOptions};

fn main() {
    let mut quick = false;
    let mut fast_math = false;
    let mut out_dir = PathBuf::from("results");
    let mut workers = 1usize;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut verbose = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--fast-math" => fast_math = true,
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }))
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--workers requires a non-negative integer");
                        std::process::exit(2);
                    })
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--trace-out requires a path");
                    std::process::exit(2);
                })))
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--metrics-out requires a path");
                    std::process::exit(2);
                })))
            }
            "-v" | "--verbose" => verbose = true,
            "--help" | "-h" => {
                eprintln!("usage: tables [--quick] [--fast-math] [--out DIR] [--workers N] [--trace-out PATH] [--metrics-out PATH] [-v] [fig1|table3|fig4|fig5|fig6|fig7|fig8|table4|fig9|fig10|single_iter|all]...");
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if trace_out.is_some() || metrics_out.is_some() || verbose {
        pka_obs::enable();
        if let Some(path) = &trace_out {
            pka_obs::trace_to(path).unwrap_or_else(|e| {
                eprintln!("error: open trace sink {}: {e}", path.display());
                std::process::exit(2);
            });
        }
    }
    // Opt-in reassociated SIMD reductions: tables are then no longer
    // byte-comparable to the committed goldens, but each distance /
    // projection reduction stays within the documented 2*d*eps bound
    // (see EXPERIMENTS.md for the verification recipe).
    if fast_math {
        pka_ml::simd::set_fast_math(true);
    }
    if wanted.is_empty() {
        wanted.push("all".into());
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    let mut options = if quick {
        RunnerOptions::quick()
    } else {
        RunnerOptions::default()
    };
    options.pka = options.pka.with_workers(workers);
    let runner = ExperimentRunner::new(options);
    fs::create_dir_all(&out_dir).expect("create output directory");

    // fig7/fig8 are one computation; fig8 aliases it.
    let mut plan: Vec<(&str, Box<dyn Fn(&ExperimentRunner) -> _>)> = Vec::new();
    if want("fig1") {
        plan.push(("fig1", Box::new(tables::fig1)));
    }
    if want("table3") {
        plan.push(("table3", Box::new(tables::table3)));
    }
    if want("fig4") {
        plan.push(("fig4", Box::new(tables::fig4)));
    }
    if want("fig5") {
        plan.push(("fig5", Box::new(|_: &ExperimentRunner| tables::fig5())));
    }
    if want("fig7") || want("fig8") {
        plan.push(("fig7_fig8", Box::new(tables::fig7_fig8)));
    }
    if want("table4") {
        plan.push(("table4", Box::new(tables::table4)));
    }
    if want("fig6") {
        plan.push(("fig6", Box::new(tables::fig6)));
    }
    if want("fig9") {
        plan.push(("fig9", Box::new(tables::fig9)));
    }
    if want("fig10") {
        plan.push(("fig10", Box::new(tables::fig10)));
    }
    if want("single_iter") {
        plan.push(("single_iter", Box::new(tables::single_iteration_study)));
    }

    let mut checksums = serde_json::Map::new();
    for (name, generate) in plan {
        let start = Instant::now();
        match generate(&runner) {
            Ok(report) => {
                println!("{}", report.text);
                println!(
                    "[{name} generated in {:.1}s]\n",
                    start.elapsed().as_secs_f64()
                );
                let path = out_dir.join(format!("{}.json", report.name));
                let payload =
                    serde_json::to_string_pretty(&report.data).expect("serialisable report");
                if pka_obs::enabled() {
                    checksums.insert(
                        report.name.clone(),
                        serde_json::json!(pka_stats::hash::fnv1a(payload.as_bytes())),
                    );
                }
                fs::write(&path, payload).expect("write report json");
            }
            Err(e) => {
                eprintln!("error generating {name}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &metrics_out {
        let config = serde_json::json!({
            "binary": "tables",
            "quick": quick,
            "workers": workers,
            "reports": wanted.clone(),
        });
        // The tables runner always uses the workspace default seeds
        // (per-K clustering streams derive as `seed ^ k`).
        let seeds = serde_json::json!({ "pks": 0u64, "classifier": 0u64 });
        pka_obs::write_manifest(path, config, seeds, serde_json::Value::Object(checksums))
            .unwrap_or_else(|e| {
                eprintln!("error: write manifest {}: {e}", path.display());
                std::process::exit(1);
            });
    }
    if verbose {
        for line in pka_obs::snapshot().summary_lines() {
            eprintln!("[obs] {line}");
        }
    }
    pka_obs::close_trace().unwrap_or_else(|e| {
        eprintln!("error: close trace sink: {e}");
        std::process::exit(1);
    });
}
