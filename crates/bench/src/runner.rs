use std::collections::HashMap;
use std::sync::Mutex;

use pka_core::{Pka, PkaConfig, PkaError, PkpMonitor, ProjectedKernel, Selection};
use pka_gpu::{GpuConfig, KernelId};
use pka_profile::{AppSiliconRun, Profiler};
use pka_sim::Simulator;
use pka_workloads::Workload;

/// Knobs for the experiment battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunnerOptions {
    /// Workloads whose total warp-instruction count exceeds this are not
    /// fully simulated (their full-simulation time is projected from
    /// silicon cycles, exactly as the paper projects its centuries).
    pub fullsim_max_instructions: u64,
    /// The PKA pipeline configuration.
    pub pka: PkaConfig,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        Self {
            fullsim_max_instructions: 25_000_000,
            pka: PkaConfig::default(),
        }
    }
}

impl RunnerOptions {
    /// A reduced configuration for smoke tests: tiny full-simulation budget.
    pub fn quick() -> Self {
        Self {
            fullsim_max_instructions: 3_000_000,
            ..Self::default()
        }
    }
}

/// A sampled-simulation outcome for one `(workload, gpu)` pair, produced
/// with the Volta-made selection (the paper's cross-generation protocol).
#[derive(Debug, Clone, PartialEq)]
pub struct SampledOutcome {
    /// PKS-only projected application cycles (reps simulated fully).
    pub pks_projected_cycles: u64,
    /// Simulator cycles spent by PKS-only.
    pub pks_simulated_cycles: u64,
    /// Full-PKA projected application cycles (reps stopped at stability).
    pub pka_projected_cycles: u64,
    /// Simulator cycles spent by PKA.
    pub pka_simulated_cycles: u64,
    /// PKA-projected DRAM utilisation, percent (group-weighted).
    pub pka_dram_util_pct: f64,
    /// Projected total warp instructions (for IPC-error reporting).
    pub projected_instructions: u64,
}

/// One full-simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullSimOutcome {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total warp instructions.
    pub instructions: u64,
    /// Cycle-weighted DRAM utilisation, percent.
    pub dram_util_pct: f64,
}

/// Memoised executor of the experiment building blocks.
///
/// All caches key on `(gpu name, workload name)`; selections are always
/// made on Volta and transferred, matching Section 5.2.2. The caches sit
/// behind mutexes so the runner is `Sync` and report generation can share
/// one runner across worker threads.
pub struct ExperimentRunner {
    options: RunnerOptions,
    volta: Pka,
    silicon_cache: Mutex<HashMap<(String, String), AppSiliconRun>>,
    selection_cache: Mutex<HashMap<String, Selection>>,
    fullsim_cache: Mutex<HashMap<(String, String), Option<FullSimOutcome>>>,
    sampled_cache: Mutex<HashMap<(String, String), SampledOutcome>>,
}

impl ExperimentRunner {
    /// Creates a runner.
    pub fn new(options: RunnerOptions) -> Self {
        Self {
            options,
            volta: Pka::new(GpuConfig::v100(), options.pka),
            silicon_cache: Mutex::new(HashMap::new()),
            selection_cache: Mutex::new(HashMap::new()),
            fullsim_cache: Mutex::new(HashMap::new()),
            sampled_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The configured options.
    pub fn options(&self) -> &RunnerOptions {
        &self.options
    }

    /// Total warp instructions of a workload (cheap, cached by callers).
    pub fn total_instructions(workload: &Workload) -> u64 {
        workload
            .iter()
            .map(|(_, k)| k.total_warp_instructions())
            .sum()
    }

    /// Whether full simulation is inside the budget for `workload`.
    pub fn fullsim_tractable(&self, workload: &Workload) -> bool {
        // Streams with millions of kernels are never candidates; for the
        // rest, bound by total instructions.
        workload.kernel_count() <= 20_000
            && Self::total_instructions(workload) <= self.options.fullsim_max_instructions
    }

    /// The whole-application silicon run on `gpu`, cached.
    ///
    /// # Errors
    ///
    /// Propagates silicon-model failures.
    pub fn silicon(&self, workload: &Workload, gpu: &GpuConfig) -> Result<AppSiliconRun, PkaError> {
        let key = (gpu.name().to_string(), workload.name().to_string());
        if let Some(run) = self.silicon_cache.lock().unwrap().get(&key) {
            cache_obs(true);
            return Ok(*run);
        }
        cache_obs(false);
        let run = Profiler::new(gpu.clone())
            .with_executor(self.options.pka.executor())
            .silicon_run(workload)?;
        self.silicon_cache.lock().unwrap().insert(key, run);
        Ok(run)
    }

    /// The Volta-made principal-kernel selection, cached.
    ///
    /// # Errors
    ///
    /// Propagates profiling and clustering failures.
    pub fn selection(&self, workload: &Workload) -> Result<Selection, PkaError> {
        if let Some(sel) = self.selection_cache.lock().unwrap().get(workload.name()) {
            cache_obs(true);
            return Ok(sel.clone());
        }
        cache_obs(false);
        let sel = self.volta.select_kernels(workload)?;
        self.selection_cache
            .lock()
            .unwrap()
            .insert(workload.name().to_string(), sel.clone());
        Ok(sel)
    }

    /// Full cycle-level simulation on `gpu`, if within budget; cached.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn fullsim(
        &self,
        workload: &Workload,
        gpu: &GpuConfig,
    ) -> Result<Option<FullSimOutcome>, PkaError> {
        let key = (gpu.name().to_string(), workload.name().to_string());
        if let Some(out) = self.fullsim_cache.lock().unwrap().get(&key) {
            cache_obs(true);
            return Ok(*out);
        }
        cache_obs(false);
        let out = if self.fullsim_tractable(workload) {
            let sim = Simulator::new(gpu.clone(), self.options.pka.sim_options());
            let ids: Vec<u64> = (0..workload.kernel_count()).collect();
            let runs = self.options.pka.executor().try_map(&ids, |_, &id| {
                let kernel = workload.kernel(KernelId::new(id));
                let r = sim.run_kernel(&kernel)?;
                Ok::<_, PkaError>((r.cycles, r.instructions, r.dram_util_pct))
            })?;
            // Fold in launch-stream order so the weighted DRAM float is
            // bitwise identical to a sequential run.
            let mut cycles = 0u64;
            let mut instructions = 0u64;
            let mut dram_weighted = 0.0f64;
            for (c, i, dram) in runs {
                cycles += c;
                instructions += i;
                dram_weighted += dram * c as f64;
            }
            Some(FullSimOutcome {
                cycles,
                instructions,
                dram_util_pct: dram_weighted / cycles.max(1) as f64,
            })
        } else {
            None
        };
        self.fullsim_cache.lock().unwrap().insert(key, out);
        Ok(out)
    }

    /// Sampled simulation (PKS and PKA) of `workload` on `gpu` using the
    /// Volta selection; cached.
    ///
    /// # Errors
    ///
    /// Propagates selection and simulator failures.
    pub fn sampled(
        &self,
        workload: &Workload,
        gpu: &GpuConfig,
    ) -> Result<SampledOutcome, PkaError> {
        let key = (gpu.name().to_string(), workload.name().to_string());
        if let Some(out) = self.sampled_cache.lock().unwrap().get(&key) {
            cache_obs(true);
            return Ok(out.clone());
        }
        cache_obs(false);
        let selection = self.selection(workload)?;
        let sim = Simulator::new(gpu.clone(), self.options.pka.sim_options());

        // One work item per representative (full run + fresh PKP monitor);
        // weighted reductions fold in representative order below.
        let reps: Vec<_> = selection.representative_ids();
        let rep_runs = self.options.pka.executor().try_map(&reps, |_, &id| {
            let kernel = workload.kernel(id);
            let full = sim.run_kernel(&kernel)?;
            let mut monitor = PkpMonitor::new(
                self.options.pka.pkp(),
                self.options.pka.sim_options().sample_interval(),
            );
            let stopped = sim.run_kernel_monitored(&kernel, &mut monitor)?;
            let projected = ProjectedKernel::from_monitored(&stopped, &monitor);
            Ok::<_, PkaError>((full.cycles, full.instructions_total, projected))
        })?;

        let mut pks_rep = Vec::with_capacity(selection.k());
        let mut pka_rep = Vec::with_capacity(selection.k());
        let mut rep_instructions = Vec::with_capacity(selection.k());
        let mut pks_spent = 0u64;
        let mut pka_spent = 0u64;
        let mut dram_weighted = 0.0f64;
        let mut dram_weight = 0.0f64;
        for (full_cycles, full_instructions, projected) in rep_runs {
            pks_rep.push(full_cycles);
            pks_spent += full_cycles;
            rep_instructions.push(full_instructions);
            pka_rep.push(projected.cycles);
            pka_spent += projected.simulated_cycles;
            dram_weighted += projected.dram_util_pct * projected.cycles as f64;
            dram_weight += projected.cycles as f64;
        }
        let projected_instructions: u64 = selection
            .groups()
            .iter()
            .zip(&rep_instructions)
            .map(|(g, &i)| g.count() * i)
            .sum();
        let out = SampledOutcome {
            pks_projected_cycles: selection.project_with(&pks_rep),
            pks_simulated_cycles: pks_spent,
            pka_projected_cycles: selection.project_with(&pka_rep),
            pka_simulated_cycles: pka_spent,
            pka_dram_util_pct: dram_weighted / dram_weight.max(1e-12),
            projected_instructions,
        };
        self.sampled_cache.lock().unwrap().insert(key, out.clone());
        Ok(out)
    }

    /// The Volta pipeline (for direct access to its profiler and config).
    pub fn volta(&self) -> &Pka {
        &self.volta
    }
}

/// Tallies a cache lookup across the runner's four result caches.
fn cache_obs(hit: bool) {
    if pka_obs::enabled() {
        if hit {
            pka_obs::counter("runner.cache_hits").incr();
        } else {
            pka_obs::counter("runner.cache_misses").incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_workloads::rodinia;

    fn bfs() -> Workload {
        rodinia::workloads()
            .into_iter()
            .find(|w| w.name() == "bfs65536")
            .unwrap()
    }

    #[test]
    fn caches_are_hit() {
        let runner = ExperimentRunner::new(RunnerOptions::quick());
        let w = bfs();
        let gpu = GpuConfig::v100();
        let a = runner.silicon(&w, &gpu).unwrap();
        let b = runner.silicon(&w, &gpu).unwrap();
        assert_eq!(a, b);
        assert_eq!(runner.silicon_cache.lock().unwrap().len(), 1);

        let s1 = runner.selection(&w).unwrap();
        let s2 = runner.selection(&w).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn fullsim_respects_budget() {
        let runner = ExperimentRunner::new(RunnerOptions {
            fullsim_max_instructions: 1,
            ..RunnerOptions::default()
        });
        let out = runner.fullsim(&bfs(), &GpuConfig::v100()).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn sampled_outcome_is_consistent() {
        let runner = ExperimentRunner::new(RunnerOptions::quick());
        let w = bfs();
        let out = runner.sampled(&w, &GpuConfig::v100()).unwrap();
        assert!(out.pka_simulated_cycles <= out.pks_simulated_cycles);
        assert!(out.pks_projected_cycles > 0);
        assert!(out.projected_instructions > 0);
    }
}
