//! The benchmark harness: regenerates every table and figure of the PKA
//! paper (see DESIGN.md §4 for the experiment index).
//!
//! * [`ExperimentRunner`] — memoised execution of the building blocks
//!   (silicon runs, selections, full simulations, sampled simulations,
//!   baselines) across GPU configurations, so that the full table battery
//!   runs each expensive simulation exactly once.
//! * [`tables`] — the per-figure/table report generators, each returning a
//!   serialisable record set and a formatted text table.
//!
//! The `tables` binary drives everything:
//!
//! ```text
//! cargo run --release -p pka-bench --bin tables -- all
//! cargo run --release -p pka-bench --bin tables -- fig7 fig8
//! cargo run --release -p pka-bench --bin tables -- --quick all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod runner;
pub mod tables;

pub use runner::{ExperimentRunner, RunnerOptions, SampledOutcome};
