//! Report-level parity: a table generated through a parallel runner must be
//! byte-identical to the sequential one — JSON record set and formatted
//! text both.

use pka_bench::{tables, ExperimentRunner, RunnerOptions};

fn runner_with_workers(workers: usize) -> ExperimentRunner {
    let mut options = RunnerOptions::default();
    options.pka = options.pka.with_workers(workers);
    ExperimentRunner::new(options)
}

#[test]
fn table3_is_identical_for_any_worker_count() {
    let sequential = tables::table3(&runner_with_workers(1)).expect("sequential table3");
    for workers in [2, 4] {
        let parallel = tables::table3(&runner_with_workers(workers)).expect("parallel table3");
        assert_eq!(
            sequential.data, parallel.data,
            "table3 records diverged at {workers} workers"
        );
        assert_eq!(
            sequential.text, parallel.text,
            "table3 text diverged at {workers} workers"
        );
        // The serialized bytes — what lands in results/table3.json — match
        // too: Value equality plus sorted-key serialization makes this
        // redundant in theory, which is exactly what this assertion pins.
        assert_eq!(
            serde_json::to_string_pretty(&sequential.data).unwrap(),
            serde_json::to_string_pretty(&parallel.data).unwrap()
        );
    }
}
