//! Parity guard: observability must never perturb results.
//!
//! Table 3 and a full sampled-simulation run are generated twice in this
//! process — once with collection off, once with collection on and a
//! JSONL sink attached — and the serialized output must be
//! *byte-identical*. Trace output itself is excluded from the comparison
//! (its line order depends on thread schedule); only pipeline results
//! are under contract. Full Table 4 parity follows the golden-table
//! convention: `#[ignore]`d because regenerating it twice takes minutes
//! in release and far longer in debug.

use std::sync::Mutex;

use pka_bench::{tables, ExperimentRunner, RunnerOptions};
use pka_gpu::GpuConfig;
use pka_workloads::{all_workloads, Workload};

// Every test toggles the process-global registry; hold this across each
// so the parallel test runner cannot interleave enable/disable calls.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// RAII: enables collection with a JSONL sink on construction; on drop,
/// disables, closes the sink, and asserts it actually traced something
/// (otherwise the parity assertion proves nothing).
struct Traced {
    path: std::path::PathBuf,
}

impl Traced {
    fn start(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "pka_obs_parity_{}_{tag}.jsonl",
            std::process::id()
        ));
        pka_obs::trace_to(&path).expect("open trace sink");
        pka_obs::enable();
        Self { path }
    }
}

impl Drop for Traced {
    fn drop(&mut self) {
        pka_obs::disable();
        pka_obs::close_trace().expect("close trace sink");
        let body = std::fs::read_to_string(&self.path).expect("read trace");
        assert!(
            body.lines().count() > 1,
            "tracing was enabled but no spans were recorded"
        );
        std::fs::remove_file(&self.path).ok();
    }
}

fn render(
    report_fn: fn(&ExperimentRunner) -> Result<tables::Report, pka_core::PkaError>,
) -> (String, String) {
    let runner = ExperimentRunner::new(RunnerOptions::quick());
    let report = report_fn(&runner).expect("report generates");
    let json = serde_json::to_string_pretty(&report.data).expect("serialisable");
    (report.text, json)
}

fn workload(name: &str) -> Workload {
    all_workloads()
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| panic!("{name} exists"))
}

#[test]
fn table3_is_bitwise_identical_with_tracing_enabled() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    pka_obs::disable();
    let (text, json) = render(tables::table3);

    let traced = Traced::start("t3");
    let (text_traced, json_traced) = render(tables::table3);
    assert_eq!(text, text_traced, "table3 text diverged under tracing");
    assert_eq!(json, json_traced, "table3 JSON diverged under tracing");

    let counters = pka_obs::snapshot().counters;
    assert!(
        counters.values().any(|&v| v > 0),
        "tracing was enabled but no counters incremented"
    );
    drop(traced);
}

#[test]
fn sampled_simulation_is_bitwise_identical_with_tracing_enabled() {
    // The simulate path: selection, full representative runs, and the
    // PKP-monitored stop rule, whose counters all fire.
    let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let w = workload("bfs65536");
    let sampled = || {
        let runner = ExperimentRunner::new(RunnerOptions::quick());
        let out = runner.sampled(&w, &GpuConfig::v100()).expect("sampled run");
        format!("{out:?}")
    };

    pka_obs::disable();
    let baseline = sampled();
    let traced = Traced::start("sampled");
    assert_eq!(baseline, sampled(), "sampled simulation diverged under tracing");
    let counters = pka_obs::snapshot().counters;
    assert!(
        counters.get("pkp.evals").copied().unwrap_or(0) > 0,
        "the PKP stop rule never evaluated under tracing"
    );
    drop(traced);
}

#[test]
fn parallel_selection_is_identical_with_counters_enabled() {
    // The Executor's worker-busy instrumentation must not disturb the
    // bitwise-determinism contract of parallel runs.
    let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let w = workload("gauss_208");
    let select = || {
        let runner = ExperimentRunner::new({
            let mut o = RunnerOptions::quick();
            o.pka = o.pka.with_workers(4);
            o
        });
        let selection = runner.selection(&w).expect("selection");
        serde_json::to_string(&selection).expect("serialisable")
    };

    pka_obs::disable();
    let baseline = select();
    let traced = Traced::start("par");
    assert_eq!(baseline, select(), "parallel selection diverged under counters");
    drop(traced);
}

#[test]
#[ignore = "full Table 4 parity: regenerates Table 4 twice — minutes in release, far longer in debug; run with `cargo test --release -p pka-bench -- --ignored`"]
fn table4_is_bitwise_identical_with_tracing_enabled() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    pka_obs::disable();
    let (text, json) = render(tables::table4);

    let traced = Traced::start("t4");
    let (text_traced, json_traced) = render(tables::table4);
    assert_eq!(text, text_traced, "table4 text diverged under tracing");
    assert_eq!(json, json_traced, "table4 JSON diverged under tracing");
    drop(traced);
}
