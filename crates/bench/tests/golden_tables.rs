//! Golden-file tests: the checked-in `results/*.json` record sets must be
//! reproducible from the current code.
//!
//! Numbers are compared at 1e-9 *relative* tolerance — tight enough that
//! any algorithmic drift (a changed seed, a reordered float reduction, a
//! modified stopping rule) fails, loose enough to ignore a serialisation
//! round-trip. In practice the pipeline is bitwise deterministic and the
//! observed error is exactly zero.

use pka_bench::{tables, ExperimentRunner, RunnerOptions};
use pka_gpu::GpuConfig;
use pka_profile::Profiler;
use pka_stats::error::abs_pct_error;
use pka_workloads::all_workloads;
use serde_json::Value;

/// Relative tolerance for golden numeric comparisons.
const REL_TOL: f64 = 1e-9;

fn golden(name: &str) -> Value {
    let path = format!(
        "{}/../../results/{name}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let payload = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {path}: {e}"));
    serde_json::from_str(&payload).expect("golden file parses")
}

/// Recursively compares two JSON values; numbers at `REL_TOL` relative
/// tolerance, everything else exactly.
fn assert_json_close(actual: &Value, expected: &Value, path: &str) {
    match (actual, expected) {
        (Value::Number(a), Value::Number(b)) => {
            let (a, b) = (a.as_f64(), b.as_f64());
            let scale = b.abs().max(1e-300);
            assert!(
                (a - b).abs() / scale <= REL_TOL,
                "{path}: {a} vs golden {b} (rel {})",
                (a - b).abs() / scale
            );
        }
        (Value::Array(a), Value::Array(b)) => {
            assert_eq!(a.len(), b.len(), "{path}: length {} vs {}", a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_json_close(x, y, &format!("{path}[{i}]"));
            }
        }
        (Value::Object(a), Value::Object(b)) => {
            let keys: Vec<_> = a.keys().collect();
            let expected_keys: Vec<_> = b.keys().collect();
            assert_eq!(keys, expected_keys, "{path}: key set differs");
            for (k, x) in a {
                assert_json_close(x, &b[k.as_str()], &format!("{path}.{k}"));
            }
        }
        _ => assert_eq!(actual, expected, "{path}"),
    }
}

#[test]
fn table3_matches_golden() {
    // Table 3 is the full PKS output record (selected ids, group counts,
    // error) for its eight showcase workloads; recompute it end to end.
    let runner = ExperimentRunner::new(RunnerOptions::default());
    let report = tables::table3(&runner).expect("table3 generates");
    assert_json_close(&report.data, &golden("table3"), "table3");
}

#[test]
fn table4_silicon_columns_match_golden() {
    // The silicon PKS columns (error + speedup on three GPU generations)
    // for a cross-suite sample of Table 4 rows, recomputed exactly the way
    // `tables::table4` computes them. The sampled-simulation columns are
    // covered by the `#[ignore]`d full regeneration below — in debug mode
    // they would dominate the suite's runtime.
    let rows = golden("table4");
    let rows = rows.as_array().expect("table4 is a record array");
    let runner = ExperimentRunner::new(RunnerOptions::default());
    let gpus = [GpuConfig::v100(), GpuConfig::rtx2060(), GpuConfig::rtx3070()];
    let sample = ["gauss_208", "bfs65536", "histo", "cutcp", "fdtd2d", "srad_v1"];

    let all = all_workloads();
    for name in sample {
        let row = rows
            .iter()
            .find(|r| r["workload"].as_str() == Some(name))
            .unwrap_or_else(|| panic!("{name} missing from golden table4"));
        let w = all.iter().find(|w| w.name() == name).expect("known workload");
        let selection = runner.selection(w).expect("selects");
        assert_eq!(
            selection.k() as u64,
            row["k"].as_u64().expect("k recorded"),
            "{name}: group count drifted from golden"
        );
        for gpu in &gpus {
            let silicon = runner.silicon(w, gpu).expect("silicon runs");
            let profiler = Profiler::new(gpu.clone());
            let mut projected = Vec::with_capacity(selection.k());
            let mut rep_seconds = 0.0;
            for id in selection.representative_ids() {
                let rec = profiler
                    .detailed(w, id.index()..id.index() + 1)
                    .expect("rep profiles");
                projected.push(rec[0].cycles);
                rep_seconds += rec[0].seconds;
            }
            let proj = selection.project_with(&projected);
            let expected = &row["silicon"][gpu.name()];
            let error_pct = abs_pct_error(proj as f64, silicon.total_cycles as f64);
            let speedup = silicon.total_seconds / rep_seconds.max(1e-12);
            assert_json_close(
                &serde_json::json!({"error_pct": error_pct, "speedup": speedup}),
                expected,
                &format!("table4.{name}.silicon.{}", gpu.name()),
            );
        }
    }
}

#[test]
#[ignore = "full Table 4 regeneration: minutes in release, far longer in debug; run with `cargo test --release -p pka-bench -- --ignored`"]
fn table4_matches_golden_in_full() {
    let runner = ExperimentRunner::new(RunnerOptions::default());
    let report = tables::table4(&runner).expect("table4 generates");
    assert_json_close(&report.data, &golden("table4"), "table4");
}
