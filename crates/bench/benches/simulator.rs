//! Timing-simulator throughput: warp instructions simulated per second on
//! the behavioural archetypes, plus the overhead of attaching a PKP
//! monitor (which must be negligible — the whole point of an online
//! detector is that watching is free compared to simulating).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pka_core::{PkpConfig, PkpMonitor};
use pka_gpu::{GpuConfig, KernelDescriptor};
use pka_sim::{SimOptions, Simulator};
use std::hint::black_box;

fn compute_kernel() -> KernelDescriptor {
    KernelDescriptor::builder("bench_compute")
        .grid_blocks(64)
        .block_threads(256)
        .fp32_per_thread(300)
        .shared_loads_per_thread(40)
        .global_loads_per_thread(10)
        .syncs_per_thread(4)
        .shared_mem_per_block(8 * 1024)
        .build()
        .expect("valid kernel")
}

fn memory_kernel() -> KernelDescriptor {
    KernelDescriptor::builder("bench_memory")
        .grid_blocks(64)
        .block_threads(256)
        .fp32_per_thread(20)
        .global_loads_per_thread(60)
        .global_stores_per_thread(20)
        .coalescing_sectors(12.0)
        .l1_locality(0.1)
        .l2_locality(0.2)
        .working_set_bytes(512 << 20)
        .build()
        .expect("valid kernel")
}

fn bench_throughput(c: &mut Criterion) {
    let sim = Simulator::new(
        GpuConfig::builder("bench16").num_sms(16).build().unwrap(),
        SimOptions::default(),
    );
    let mut group = c.benchmark_group("simulator_throughput");
    group.sample_size(10);
    for (name, kernel) in [("compute_tile", compute_kernel()), ("memory_stream", memory_kernel())]
    {
        group.throughput(Throughput::Elements(kernel.total_warp_instructions()));
        group.bench_function(name, |b| {
            b.iter(|| sim.run_kernel(black_box(&kernel)).unwrap())
        });
    }
    group.finish();
}

fn bench_monitor_overhead(c: &mut Criterion) {
    let sim = Simulator::new(
        GpuConfig::builder("bench16").num_sms(16).build().unwrap(),
        SimOptions::default(),
    );
    let kernel = compute_kernel();
    let mut group = c.benchmark_group("pkp_monitor_overhead");
    group.sample_size(10);
    group.bench_function("unmonitored", |b| {
        b.iter(|| sim.run_kernel(black_box(&kernel)).unwrap())
    });
    group.bench_function("monitored_never_stops", |b| {
        b.iter(|| {
            // Threshold 0: stability is never declared, so this measures
            // pure observation overhead on a full-length run.
            let mut monitor = PkpMonitor::new(
                PkpConfig::default().with_threshold(0.0),
                sim.options().sample_interval(),
            );
            sim.run_kernel_monitored(black_box(&kernel), &mut monitor)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_interconnect_ablation(c: &mut Criterion) {
    // The opt-in NoC backpressure model: how much simulation cost (and
    // simulated contention) the extra fidelity buys on an L2-heavy kernel.
    let kernel = KernelDescriptor::builder("bench_l2heavy")
        .grid_blocks(64)
        .block_threads(128)
        .fp32_per_thread(8)
        .global_loads_per_thread(40)
        .l1_locality(0.0)
        .l2_locality(0.95)
        .working_set_bytes(1 << 20)
        .coalescing_sectors(8.0)
        .build()
        .expect("valid kernel");
    let mut group = c.benchmark_group("icnt_backpressure");
    group.sample_size(10);
    for (name, enabled) in [("flat_l2_latency", false), ("queued_l2_slices", true)] {
        let sim = Simulator::new(
            GpuConfig::builder("bench16").num_sms(16).build().unwrap(),
            SimOptions::default().with_interconnect(enabled),
        );
        group.bench_function(name, |b| {
            b.iter(|| sim.run_kernel(black_box(&kernel)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_throughput,
    bench_monitor_overhead,
    bench_interconnect_ablation
);
criterion_main!(benches);
