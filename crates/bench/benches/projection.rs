//! The Principal Kernel Projection trade-off (Figure 5's threshold sweep,
//! as a benchmark): how much simulation each stability threshold buys, and
//! the cost of the wave-constraint ablation.
//!
//! Criterion measures wall time of the monitored runs; looser thresholds
//! must run measurably faster because they stop earlier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pka_core::{PkpConfig, PkpMonitor};
use pka_gpu::{GpuConfig, KernelDescriptor};
use pka_sim::{SimOptions, Simulator};
use std::hint::black_box;

fn long_stable_kernel() -> KernelDescriptor {
    KernelDescriptor::builder("bench_stable")
        .grid_blocks(512)
        .block_threads(256)
        .fp32_per_thread(200)
        .global_loads_per_thread(12)
        .build()
        .expect("valid kernel")
}

fn bench_threshold_sweep(c: &mut Criterion) {
    let sim = Simulator::new(
        GpuConfig::builder("bench16").num_sms(16).build().unwrap(),
        SimOptions::default(),
    );
    let kernel = long_stable_kernel();
    let mut group = c.benchmark_group("pkp_threshold_sweep");
    group.sample_size(10);
    for s in [2.5, 0.25, 0.025] {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| {
                let mut monitor = PkpMonitor::new(
                    PkpConfig::default().with_threshold(s),
                    sim.options().sample_interval(),
                );
                sim.run_kernel_monitored(black_box(&kernel), &mut monitor)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_wave_constraint_ablation(c: &mut Criterion) {
    let sim = Simulator::new(
        GpuConfig::builder("bench16").num_sms(16).build().unwrap(),
        SimOptions::default(),
    );
    let kernel = long_stable_kernel();
    let mut group = c.benchmark_group("pkp_wave_constraint");
    group.sample_size(10);
    for (name, enforce) in [("with_wave", true), ("without_wave", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut monitor = PkpMonitor::new(
                    PkpConfig::default().with_wave_constraint(enforce),
                    sim.options().sample_interval(),
                );
                sim.run_kernel_monitored(black_box(&kernel), &mut monitor)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threshold_sweep, bench_wave_constraint_ablation);
criterion_main!(benches);
