//! The million-kernel perf trajectory: median/stddev measurements of the
//! three pipeline hot paths, emitted to `BENCH_pka.json`.
//!
//! * `kmeans_sweep` — the PKS K-sweep clustering cost on a 50k-kernel
//!   metric cloud, comparing the bounded (Hamerly-style) assignment
//!   against the naive Lloyd's reference it must match bitwise. `bounded`
//!   runs the default bitwise SIMD tier (set `PKA_NO_SIMD=1` to force
//!   scalar); `bounded_simd` additionally enables the opt-in fast-math
//!   tier, the full reassociated-reduction configuration.
//! * `pca_fit` — scale → fit → truncate → project, the PKS projection
//!   stage, on the same cloud at full Table 2 dimensionality.
//! * `pkp_engine` — a monitored simulation of a large kernel, the PKP
//!   per-kernel cost.
//! * `stream_ingest` — end-to-end online PKS over a synthetic workload
//!   stream (detailed prefix + classified tail), the `pka-stream`
//!   bounded-memory ingestion cost per kernel. `online_pks` is the
//!   single-pipeline reference; `sharded_s{2,4}` run the sharded engine
//!   (hash-ring routing + batched tail classification) on the same
//!   sequential executor, so the ratio isolates the per-core win.
//!
//! Run with `cargo bench -p pka-bench --bench hot_paths`; CI runs a
//! reduced-iteration smoke via `PKA_BENCH_SAMPLES` / `PKA_BENCH_WARMUP`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pka_core::{PkpConfig, PkpMonitor};
use pka_gpu::{GpuConfig, KernelDescriptor};
use pka_ml::{KMeans, Matrix, Pca, StandardScaler};
use pka_profile::Profiler;
use pka_sim::{SimOptions, Simulator};
use pka_stats::hash::UnitStream;
use pka_stats::Executor;
use pka_stream::{
    synthetic_workload, KernelSource, ShardedStreamPks, StreamConfig, StreamPks, WorkloadSource,
};
use std::hint::black_box;

/// Synthetic kernel-metric cloud: `n` points around 24 behavioural centres
/// in `d`-dimensional space (Table 2 uses 12 metrics; the clustering sweep
/// runs post-PCA at roughly half that). The centre count brackets the
/// swept K range, matching the PKS regime where the knee search explores
/// cluster counts comparable to the real mode count of the data.
fn metric_cloud(n: usize, d: usize) -> Matrix {
    let mut rng = UnitStream::new(42);
    let centres: Vec<Vec<f64>> = (0..24)
        .map(|c| (0..d).map(|j| ((c * 5 + j * 3) % 13) as f64 * 2.0).collect())
        .collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = &centres[i % 24];
            c.iter().map(|&x| x + rng.next_range(-0.3, 0.3)).collect()
        })
        .collect();
    Matrix::from_rows(&rows).expect("valid cloud")
}

/// Full PKS-style K sweep: fit K = 1..=k_max on the same data, the shape
/// of work `Pks::select` performs when searching for the knee.
fn kmeans_sweep(data: &Matrix, k_max: usize, exec: Executor) -> f64 {
    let mut total_inertia = 0.0;
    for k in 1..=k_max {
        let fit = KMeans::new(k)
            .with_seed(0)
            .with_executor(exec)
            .fit(data)
            .expect("sweep fit");
        total_inertia += fit.inertia();
    }
    total_inertia
}

/// The same sweep through the naive Lloyd's reference path.
fn kmeans_sweep_reference(data: &Matrix, k_max: usize) -> f64 {
    let mut total_inertia = 0.0;
    for k in 1..=k_max {
        let fit = KMeans::new(k)
            .with_seed(0)
            .fit_reference(data)
            .expect("sweep fit");
        total_inertia += fit.inertia();
    }
    total_inertia
}

fn bench_kmeans_sweep(c: &mut Criterion) {
    const N: usize = 50_000;
    const D: usize = 6;
    const K_MAX: usize = 20;
    let data = metric_cloud(N, D);
    let mut group = c.benchmark_group("kmeans_sweep");
    group.sample_size(5);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_with_input(
        BenchmarkId::new("bounded", N),
        &data,
        |b, data| b.iter(|| kmeans_sweep(black_box(data), K_MAX, Executor::sequential())),
    );
    group.bench_with_input(
        BenchmarkId::new("bounded_simd", N),
        &data,
        |b, data| {
            pka_ml::simd::set_fast_math(true);
            b.iter(|| kmeans_sweep(black_box(data), K_MAX, Executor::sequential()));
            pka_ml::simd::set_fast_math(false);
        },
    );
    group.bench_with_input(
        BenchmarkId::new("bounded_w4", N),
        &data,
        |b, data| b.iter(|| kmeans_sweep(black_box(data), K_MAX, Executor::new(4))),
    );
    group.bench_with_input(
        BenchmarkId::new("reference", N),
        &data,
        |b, data| b.iter(|| kmeans_sweep_reference(black_box(data), K_MAX)),
    );
    group.finish();
}

fn bench_pca_fit(c: &mut Criterion) {
    const N: usize = 50_000;
    const D: usize = 12;
    let data = metric_cloud(N, D);
    let mut group = c.benchmark_group("pca_fit");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_with_input(
        BenchmarkId::new("scale_fit_project", N),
        &data,
        |b, data| {
            b.iter(|| {
                let (_, scaled) =
                    StandardScaler::fit_transform(black_box(data)).expect("scale");
                let fit = Pca::full().fit(&scaled).expect("pca fit");
                let truncated = fit.truncated_to_variance(0.95);
                truncated.transform(&scaled).expect("project")
            })
        },
    );
    group.finish();
}

fn bench_pkp_engine(c: &mut Criterion) {
    let sim = Simulator::new(GpuConfig::v100(), SimOptions::default());
    let kernel = KernelDescriptor::builder("pkp_bench")
        .grid_blocks(4000)
        .block_threads(256)
        .fp32_per_thread(300)
        .global_loads_per_thread(8)
        .build()
        .expect("valid kernel");
    let mut group = c.benchmark_group("pkp_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(kernel.total_warp_instructions()));
    group.bench_function("monitored_run", |b| {
        b.iter(|| {
            let mut monitor =
                PkpMonitor::new(PkpConfig::default(), sim.options().sample_interval());
            sim.run_kernel_monitored(black_box(&kernel), &mut monitor)
                .expect("simulate")
        })
    });
    group.finish();
}

fn bench_stream_ingest(c: &mut Criterion) {
    const N: u64 = 500_000;
    const PREFIX: u64 = 2_000;
    let workload = synthetic_workload(N);
    let config = StreamConfig::default()
        .with_prefix(PREFIX)
        .with_checkpoint_every(100_000)
        .with_reservoir(2_048)
        .with_batch(1_024);
    let mut group = c.benchmark_group("stream_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N));

    // Single-pipeline reference: the pre-sharding `StreamPks` tail.
    let mut source = WorkloadSource::new(workload.clone(), Profiler::new(GpuConfig::v100()));
    group.bench_function(BenchmarkId::new("online_pks", N), |b| {
        b.iter(|| {
            source.restart().expect("restart");
            StreamPks::new(config)
                .with_executor(Executor::sequential())
                .run(black_box(&mut source), |_| Ok(()))
                .expect("stream runs")
                .report
                .records
        })
    });

    // Sharded engine on the same stream and executor budget: the batched
    // tail classifier amortises centroid loads across the mini-batch, so
    // the speedup is per-core, not worker-count parallelism.
    for shards in [2usize, 4] {
        group.bench_function(BenchmarkId::new(format!("sharded_s{shards}"), N), |b| {
            b.iter(|| {
                source.restart().expect("restart");
                ShardedStreamPks::new(config, shards)
                    .with_executor(Executor::sequential())
                    .run(black_box(&mut source), |_| Ok(()))
                    .expect("sharded stream runs")
                    .report
                    .records
            })
        });
    }
    group.finish();
}

criterion_group!(
    hot_paths,
    bench_kmeans_sweep,
    bench_pca_fit,
    bench_pkp_engine,
    bench_stream_ingest
);
criterion_main!(hot_paths);
