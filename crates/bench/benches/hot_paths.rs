//! The million-kernel perf trajectory: median/stddev measurements of the
//! three pipeline hot paths, emitted to `BENCH_pka.json`.
//!
//! * `kmeans_sweep` — the PKS K-sweep clustering cost on a 50k-kernel
//!   metric cloud, comparing the bounded (Hamerly-style) assignment
//!   against the naive Lloyd's reference it must match bitwise. `bounded`
//!   runs the default bitwise SIMD tier (set `PKA_NO_SIMD=1` to force
//!   scalar); `bounded_simd` additionally enables the opt-in fast-math
//!   tier, the full reassociated-reduction configuration.
//! * `pca_fit` — scale → fit → truncate → project, the PKS projection
//!   stage, on the same cloud at full Table 2 dimensionality.
//! * `pkp_engine` — a monitored simulation of a large kernel, the PKP
//!   per-kernel cost.
//! * `stream_ingest` — end-to-end online PKS over a synthetic workload
//!   stream (detailed prefix + classified tail), the `pka-stream`
//!   bounded-memory ingestion cost per kernel. `online_pks` is the
//!   single-pipeline reference; `sharded_s{2,4}` run the sharded engine
//!   (hash-ring routing + batched tail classification) on the same
//!   sequential executor, so the ratio isolates the per-core win.
//! * `server_session_roundtrip` — the full `pka-server` service path:
//!   `POST /v1/sessions` over a real socket, a 100k-record synthetic
//!   streaming session, and `GET .../result`. The delta against
//!   `stream_ingest/online_pks` is the whole service overhead (HTTP
//!   parse, session registry, worker spawn, progress ring).
//!
//! Run with `cargo bench -p pka-bench --bench hot_paths`; CI runs a
//! reduced-iteration smoke via `PKA_BENCH_SAMPLES` / `PKA_BENCH_WARMUP`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pka_core::{PkpConfig, PkpMonitor};
use pka_gpu::{GpuConfig, KernelDescriptor};
use pka_ml::{KMeans, Matrix, Pca, StandardScaler};
use pka_profile::Profiler;
use pka_server::{PkaServer, ServerConfig};
use pka_sim::{SimOptions, Simulator};
use pka_stats::hash::UnitStream;
use pka_stats::Executor;
use pka_stream::{
    synthetic_workload, KernelSource, ShardedStreamPks, StreamConfig, StreamPks, WorkloadSource,
};
use std::hint::black_box;

/// Synthetic kernel-metric cloud: `n` points around 24 behavioural centres
/// in `d`-dimensional space (Table 2 uses 12 metrics; the clustering sweep
/// runs post-PCA at roughly half that). The centre count brackets the
/// swept K range, matching the PKS regime where the knee search explores
/// cluster counts comparable to the real mode count of the data.
fn metric_cloud(n: usize, d: usize) -> Matrix {
    let mut rng = UnitStream::new(42);
    let centres: Vec<Vec<f64>> = (0..24)
        .map(|c| (0..d).map(|j| ((c * 5 + j * 3) % 13) as f64 * 2.0).collect())
        .collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = &centres[i % 24];
            c.iter().map(|&x| x + rng.next_range(-0.3, 0.3)).collect()
        })
        .collect();
    Matrix::from_rows(&rows).expect("valid cloud")
}

/// Full PKS-style K sweep: fit K = 1..=k_max on the same data, the shape
/// of work `Pks::select` performs when searching for the knee.
fn kmeans_sweep(data: &Matrix, k_max: usize, exec: Executor) -> f64 {
    let mut total_inertia = 0.0;
    for k in 1..=k_max {
        let fit = KMeans::new(k)
            .with_seed(0)
            .with_executor(exec)
            .fit(data)
            .expect("sweep fit");
        total_inertia += fit.inertia();
    }
    total_inertia
}

/// The same sweep through the naive Lloyd's reference path.
fn kmeans_sweep_reference(data: &Matrix, k_max: usize) -> f64 {
    let mut total_inertia = 0.0;
    for k in 1..=k_max {
        let fit = KMeans::new(k)
            .with_seed(0)
            .fit_reference(data)
            .expect("sweep fit");
        total_inertia += fit.inertia();
    }
    total_inertia
}

fn bench_kmeans_sweep(c: &mut Criterion) {
    const N: usize = 50_000;
    const D: usize = 6;
    const K_MAX: usize = 20;
    let data = metric_cloud(N, D);
    let mut group = c.benchmark_group("kmeans_sweep");
    group.sample_size(5);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_with_input(
        BenchmarkId::new("bounded", N),
        &data,
        |b, data| b.iter(|| kmeans_sweep(black_box(data), K_MAX, Executor::sequential())),
    );
    group.bench_with_input(
        BenchmarkId::new("bounded_simd", N),
        &data,
        |b, data| {
            pka_ml::simd::set_fast_math(true);
            b.iter(|| kmeans_sweep(black_box(data), K_MAX, Executor::sequential()));
            pka_ml::simd::set_fast_math(false);
        },
    );
    group.bench_with_input(
        BenchmarkId::new("bounded_w4", N),
        &data,
        |b, data| b.iter(|| kmeans_sweep(black_box(data), K_MAX, Executor::new(4))),
    );
    group.bench_with_input(
        BenchmarkId::new("reference", N),
        &data,
        |b, data| b.iter(|| kmeans_sweep_reference(black_box(data), K_MAX)),
    );
    group.finish();
}

fn bench_pca_fit(c: &mut Criterion) {
    const N: usize = 50_000;
    const D: usize = 12;
    let data = metric_cloud(N, D);
    let mut group = c.benchmark_group("pca_fit");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_with_input(
        BenchmarkId::new("scale_fit_project", N),
        &data,
        |b, data| {
            b.iter(|| {
                let (_, scaled) =
                    StandardScaler::fit_transform(black_box(data)).expect("scale");
                let fit = Pca::full().fit(&scaled).expect("pca fit");
                let truncated = fit.truncated_to_variance(0.95);
                truncated.transform(&scaled).expect("project")
            })
        },
    );
    group.finish();
}

fn bench_pkp_engine(c: &mut Criterion) {
    let sim = Simulator::new(GpuConfig::v100(), SimOptions::default());
    let kernel = KernelDescriptor::builder("pkp_bench")
        .grid_blocks(4000)
        .block_threads(256)
        .fp32_per_thread(300)
        .global_loads_per_thread(8)
        .build()
        .expect("valid kernel");
    let mut group = c.benchmark_group("pkp_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(kernel.total_warp_instructions()));
    group.bench_function("monitored_run", |b| {
        b.iter(|| {
            let mut monitor =
                PkpMonitor::new(PkpConfig::default(), sim.options().sample_interval());
            sim.run_kernel_monitored(black_box(&kernel), &mut monitor)
                .expect("simulate")
        })
    });
    group.finish();
}

fn bench_stream_ingest(c: &mut Criterion) {
    const N: u64 = 500_000;
    const PREFIX: u64 = 2_000;
    let workload = synthetic_workload(N);
    let config = StreamConfig::default()
        .with_prefix(PREFIX)
        .with_checkpoint_every(100_000)
        .with_reservoir(2_048)
        .with_batch(1_024);
    let mut group = c.benchmark_group("stream_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N));

    // Single-pipeline reference: the pre-sharding `StreamPks` tail.
    let mut source = WorkloadSource::new(workload.clone(), Profiler::new(GpuConfig::v100()));
    group.bench_function(BenchmarkId::new("online_pks", N), |b| {
        b.iter(|| {
            source.restart().expect("restart");
            StreamPks::new(config)
                .with_executor(Executor::sequential())
                .run(black_box(&mut source), |_| Ok(()))
                .expect("stream runs")
                .report
                .records
        })
    });

    // Sharded engine on the same stream and executor budget: the batched
    // tail classifier amortises centroid loads across the mini-batch, so
    // the speedup is per-core, not worker-count parallelism.
    for shards in [2usize, 4] {
        group.bench_function(BenchmarkId::new(format!("sharded_s{shards}"), N), |b| {
            b.iter(|| {
                source.restart().expect("restart");
                ShardedStreamPks::new(config, shards)
                    .with_executor(Executor::sequential())
                    .run(black_box(&mut source), |_| Ok(()))
                    .expect("sharded stream runs")
                    .report
                    .records
            })
        });
    }
    group.finish();
}

/// One raw-socket HTTP exchange against the in-process service.
fn http_roundtrip(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String) {
    use std::io::{BufRead, BufReader, Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: b\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("header");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("length");
        }
    }
    let mut out = vec![0u8; content_length];
    reader.read_exact(&mut out).expect("body");
    (status, String::from_utf8(out).expect("utf8"))
}

fn bench_server_roundtrip(c: &mut Criterion) {
    const N: u64 = 100_000;
    let server =
        PkaServer::bind(ServerConfig::default()).expect("bind analysis service");
    let addr = server.addr().expect("addr");
    let spec = serde_json::json!({
        "mode": "stream",
        "source": format!("synthetic:{N}"),
        "prefix": 2_000,
        "checkpoint_every": 100_000,
        "reservoir": 2_048,
        "batch": 1_024,
    })
    .to_string();

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("serve"));
        let mut group = c.benchmark_group("server_session_roundtrip");
        group.sample_size(10);
        group.throughput(Throughput::Elements(N));
        group.bench_function(BenchmarkId::new("http_session", N), |b| {
            b.iter(|| {
                let (status, body) = http_roundtrip(addr, "POST", "/v1/sessions", &spec);
                assert_eq!(status, 200, "{body}");
                let created: serde_json::Value =
                    serde_json::from_str(&body).expect("create response");
                let id = created.get("id").and_then(|v| v.as_str()).expect("id");
                // Join in-process (the worker finishes the whole stream),
                // then fetch the result over the socket like a client would.
                server.registry().get(id).expect("registered").join();
                let (status, body) = http_roundtrip(
                    addr,
                    "GET",
                    &format!("/v1/sessions/{id}/result"),
                    "",
                );
                assert_eq!(status, 200, "{body}");
                black_box(body.len())
            })
        });
        group.finish();
        let (status, _) = http_roundtrip(addr, "POST", "/v1/shutdown", "");
        assert_eq!(status, 200);
        handle.join().expect("server thread");
    });
}

criterion_group!(
    hot_paths,
    bench_kmeans_sweep,
    bench_pca_fit,
    bench_pkp_engine,
    bench_stream_ingest,
    bench_server_roundtrip
);
criterion_main!(hot_paths);
