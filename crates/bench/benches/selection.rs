//! Principal Kernel Selection cost: the end-to-end profile→PCA→K-sweep
//! pipeline on real workload streams, and the two-level classifier
//! mapping throughput (which must digest millions of lightweight records
//! for the MLPerf workloads).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pka_core::{Pks, PksConfig};
use pka_gpu::GpuConfig;
use pka_ml::classify::{Classifier, Ensemble, GaussianNb, MlpClassifier, SgdClassifier};
use pka_ml::Matrix;
use pka_profile::{LightweightRecord, Profiler};
use pka_workloads::{polybench, rodinia, Workload};
use std::hint::black_box;

fn find(suite: Vec<Workload>, name: &str) -> Workload {
    suite.into_iter().find(|w| w.name() == name).expect("known workload")
}

fn bench_pks(c: &mut Criterion) {
    let profiler = Profiler::new(GpuConfig::v100());
    let mut group = c.benchmark_group("pks_select");
    group.sample_size(10);
    for w in [
        find(rodinia::workloads(), "gauss_208"),
        find(polybench::workloads(), "fdtd2d"),
        find(polybench::workloads(), "gramschmidt"),
    ] {
        let records = profiler.detailed(&w, 0..w.kernel_count()).expect("profiled");
        group.throughput(Throughput::Elements(records.len() as u64));
        group.bench_function(w.name(), |b| {
            b.iter(|| {
                Pks::new(PksConfig::default())
                    .select(black_box(&records))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_two_level_classification(c: &mut Criterion) {
    // Train on gramschmidt's first 600 kernels, then measure the per-record
    // mapping throughput that the MLPerf tails (millions of records) hit.
    let profiler = Profiler::new(GpuConfig::v100());
    let w = find(polybench::workloads(), "gramschmidt");
    let detailed = profiler.detailed(&w, 0..600).expect("profiled");
    let selection = Pks::new(PksConfig::default()).select(&detailed).expect("selected");
    let train = profiler.lightweight(&w, 0..600);
    let x = Matrix::from_rows(
        &train.iter().map(|r| r.to_feature_vector()).collect::<Vec<_>>(),
    )
    .expect("features");
    let y = selection.labels().to_vec();
    let ensemble = Ensemble::new(vec![
        Box::new(SgdClassifier::fit(&x, &y, 0).expect("sgd")),
        Box::new(GaussianNb::fit(&x, &y).expect("gnb")),
        Box::new(MlpClassifier::fit(&x, &y, 1).expect("mlp")),
    ]);
    let tail: Vec<LightweightRecord> = profiler.lightweight(&w, 600..1600);

    let mut group = c.benchmark_group("two_level_mapping");
    group.throughput(Throughput::Elements(tail.len() as u64));
    group.bench_function("classify_1000_records", |b| {
        b.iter(|| {
            let mut counts = vec![0u64; selection.k()];
            for r in &tail {
                let g = ensemble.predict(black_box(&r.to_feature_vector())).unwrap();
                counts[g] += 1;
            }
            counts
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pks, bench_two_level_classification);
criterion_main!(benches);
