//! The scalability argument of Section 3.1: K-Means scales to the millions
//! of kernels in scaled workloads, hierarchical clustering does not.
//!
//! `kmeans` should grow roughly linearly with the point count while
//! `hierarchical` grows super-quadratically — the quantitative basis for
//! the paper's claim that TBPoint-style clustering "demands an impractical
//! amount of memory and runtime".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pka_ml::{Agglomerative, KMeans, Matrix, Pca, StandardScaler};
use pka_stats::hash::UnitStream;
use std::hint::black_box;

/// Synthetic kernel-metric cloud: `n` points around 6 behavioural centres
/// in 12-dimensional (Table 2) space.
fn metric_cloud(n: usize) -> Matrix {
    let mut rng = UnitStream::new(42);
    let centres: Vec<Vec<f64>> = (0..6)
        .map(|c| (0..12).map(|d| ((c * 5 + d) % 7) as f64 * 2.0).collect())
        .collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = &centres[i % 6];
            c.iter().map(|&x| x + rng.next_range(-0.3, 0.3)).collect()
        })
        .collect();
    Matrix::from_rows(&rows).expect("valid cloud")
}

fn bench_kmeans_vs_hierarchical(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_scalability");
    group.sample_size(10);
    for n in [100usize, 200, 400, 800] {
        let data = metric_cloud(n);
        group.bench_with_input(BenchmarkId::new("kmeans_k6", n), &data, |b, data| {
            b.iter(|| KMeans::new(6).with_seed(1).fit(black_box(data)).unwrap())
        });
        // The quadratic method is only benchmarked where it is still
        // tractable at all.
        if n <= 400 {
            group.bench_with_input(BenchmarkId::new("hierarchical", n), &data, |b, data| {
                b.iter(|| Agglomerative::new().cut_at(black_box(data), 1.0).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_pca(c: &mut Criterion) {
    let mut group = c.benchmark_group("pca");
    group.sample_size(20);
    for n in [500usize, 5_000] {
        let data = metric_cloud(n);
        group.bench_with_input(BenchmarkId::new("fit_transform", n), &data, |b, data| {
            b.iter(|| {
                let (_, scaled) = StandardScaler::fit_transform(black_box(data)).unwrap();
                let fit = Pca::full().fit(&scaled).unwrap().truncated_to_variance(0.95);
                fit.transform(&scaled).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans_vs_hierarchical, bench_pca);
criterion_main!(benches);
