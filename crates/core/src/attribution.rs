//! Error attribution: an exact per-group decomposition of PKA's projection
//! error, plus the provenance of every group representative.
//!
//! The paper's headline numbers (Table 3/4) report one scalar error per
//! workload; when a run drifts toward the 5% target nothing in the pipeline
//! says *which group* is responsible. This module decomposes the reported
//! error into additive signed per-group terms:
//!
//! * the **PKS term** — how much scaling the group's representative by the
//!   group population deviates from the group's share of the truth
//!   (per-kernel silicon cycles when silicon is available, the profiled
//!   members' measured cycles otherwise), and
//! * the **PKP term** — how much the stop-rule projection of the
//!   representative deviates from its full simulation, scaled by the group
//!   population.
//!
//! The decomposition is exact, not heuristic: the signed terms sum to the
//! pipeline's reported `pks_error_pct` / `pka_error_pct` within 1e-9
//! relative, and [`ErrorAttribution::verify_sums`] enforces it. DRAM
//! utilisation decomposes the same way into additive per-group shares.
//!
//! Everything here is a pure function of the selection, the provenance and
//! the per-representative simulation samples, so artifacts are
//! byte-identical across worker counts and across sharded vs.
//! single-pipeline runs.

use serde::value::{Map, Value, ValueError};
use serde::{Deserialize, Serialize};

use crate::Selection;

/// Schema identifier stamped into every attribution artifact.
pub const ATTRIBUTION_SCHEMA: &str = "pka.attribution/v1";

/// Relative tolerance of the sum-to-total invariant.
const SUM_REL_TOL: f64 = 1e-9;

/// Provenance of one group's representative, computed from the detailed
/// records the selection was made from (see `Pks::provenance`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupProvenance {
    /// 0-based launch rank of the representative among its group's profiled
    /// members (0 = earliest member; always 0 under the default
    /// first-chronological policy).
    pub chrono_rank: u64,
    /// Euclidean distance from the representative's row to its group's mean
    /// in the PCA-projected feature space the clustering ran in.
    pub distance_to_centroid: f64,
    /// Lower bound of the seeded bootstrap 95% confidence interval on the
    /// mean member cycles — the within-group variance witness.
    pub member_mean_ci_low: f64,
    /// Upper bound of the same interval.
    pub member_mean_ci_high: f64,
}

/// Per-representative simulation samples feeding the simulation-kind
/// decomposition, in group order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepSimulation {
    /// Cycles of the representative simulated to completion (the PKS path).
    pub pks_cycles: u64,
    /// Cycles projected for the representative by the PKP stop rule.
    pub pka_cycles: u64,
    /// Simulator cycles actually spent under the PKP monitor.
    pub simulated_cycles: u64,
    /// DRAM utilisation of the projected representative, percent.
    pub dram_util_pct: f64,
}

/// One group's provenance and its additive contribution to the total error.
///
/// Serialization skips the `None` simulation-only fields, so selection-kind
/// artifacts carry no dangling keys. (The vendored serde derive has no
/// `skip_serializing_if`, hence the hand-written impls below.)
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAttribution {
    /// Group index (cluster order, matching `Selection::groups`).
    pub group: usize,
    /// The representative's kernel id.
    pub representative: u64,
    /// Launch rank of the representative within its group (provenance).
    pub chrono_rank: u64,
    /// Distance from the representative to the group mean in PCA space.
    pub distance_to_centroid: f64,
    /// The projection weight: kernels this group represents, including
    /// two-level / streamed classified members.
    pub weight: u64,
    /// Members profiled in detail.
    pub profiled_count: u64,
    /// Total measured cycles of the profiled members.
    pub member_cycles: u64,
    /// Bootstrap CI (low) on the mean member cycles.
    pub member_mean_ci_low: f64,
    /// Bootstrap CI (high) on the mean member cycles.
    pub member_mean_ci_high: f64,
    /// Representative cycles on the PKS path (measured on silicon for
    /// selection-kind artifacts, fully simulated for simulation-kind).
    pub rep_cycles_pks: u64,
    /// Representative cycles projected by PKP (simulation-kind only).
    pub rep_cycles_pka: Option<u64>,
    /// `simulated / projected` for the representative under PKP
    /// (simulation-kind only).
    pub skip_ratio: Option<f64>,
    /// Signed PKS (group-scaling) error contribution, percent points.
    pub pks_term_pct: f64,
    /// Signed PKP (stop-rule) error contribution, percent points
    /// (simulation-kind only).
    pub pkp_term_pct: Option<f64>,
    /// Signed total contribution: PKS term plus PKP term when present.
    pub total_term_pct: f64,
    /// DRAM utilisation of the projected representative, percent
    /// (simulation-kind only).
    pub dram_util_pct: Option<f64>,
    /// Additive share of the application-level DRAM utilisation, percent
    /// points (simulation-kind only; shares sum to the reported value).
    pub dram_share_pct: Option<f64>,
}

/// Per-shard provenance section of a sharded streaming run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardAttribution {
    /// Shard index (hash-ring order).
    pub shard: usize,
    /// Tail records this shard consumed.
    pub records: u64,
    /// Per-group classified-member counts this shard contributed, in group
    /// order (summing shard sections in shard-id order reproduces the
    /// merged group weights).
    pub tail_counts: Vec<u64>,
}

/// The `pka.attribution/v1` artifact: an exact per-group decomposition of
/// the reported projection error plus each representative's provenance.
///
/// Serialization skips the `None` simulation-only fields and an empty
/// `shards` section, so batch / single-pipeline artifacts carry no dangling
/// keys and a sharded run's artifact differs from the single pipeline's by
/// exactly its `shards` section.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorAttribution {
    /// Always [`ATTRIBUTION_SCHEMA`].
    pub schema: String,
    /// Workload (or stream source) name.
    pub workload: String,
    /// `"selection"` (truth = profiled members) or `"simulation"`
    /// (truth = silicon, with a PKP term per representative).
    pub kind: String,
    /// The error reference: profiled-member cycles for selection-kind,
    /// silicon cycles for simulation-kind.
    pub reference_cycles: u64,
    /// PKS-path projected application cycles.
    pub pks_projected_cycles: u64,
    /// PKA-path (PKP-stopped) projected application cycles
    /// (simulation-kind only).
    pub pka_projected_cycles: Option<u64>,
    /// Signed PKS error, percent (sum of the groups' `pks_term_pct`).
    pub pks_err_signed_pct: f64,
    /// The pipeline's reported absolute PKS error, percent.
    pub pks_err_pct: f64,
    /// Signed PKA error, percent (sum of the groups' `total_term_pct`;
    /// simulation-kind only).
    pub pka_err_signed_pct: Option<f64>,
    /// The pipeline's reported absolute PKA error, percent
    /// (simulation-kind only).
    pub pka_err_pct: Option<f64>,
    /// Reported application-level DRAM utilisation, percent
    /// (simulation-kind only; the groups' `dram_share_pct` sum to it).
    pub dram_util_pct: Option<f64>,
    /// Per-group decomposition, in group order.
    pub groups: Vec<GroupAttribution>,
    /// Per-shard sections of a sharded streaming run (empty and omitted
    /// for batch and single-pipeline runs).
    pub shards: Vec<ShardAttribution>,
}

fn put<T: Serialize>(m: &mut Map, key: &str, value: &T) {
    m.insert(key.to_string(), value.to_json_value());
}

fn put_opt<T: Serialize>(m: &mut Map, key: &str, value: &Option<T>) {
    if let Some(v) = value {
        m.insert(key.to_string(), v.to_json_value());
    }
}

fn req<T: Deserialize>(value: &Value, key: &str) -> Result<T, ValueError> {
    T::from_json_value(&value[key])
        .map_err(|e| ValueError::custom(format!("attribution field `{key}`: {e}")))
}

fn opt<T: Deserialize>(value: &Value, key: &str) -> Result<Option<T>, ValueError> {
    if value[key].is_null() {
        Ok(None)
    } else {
        req(value, key).map(Some)
    }
}

impl Serialize for GroupAttribution {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        put(&mut m, "group", &self.group);
        put(&mut m, "representative", &self.representative);
        put(&mut m, "chrono_rank", &self.chrono_rank);
        put(&mut m, "distance_to_centroid", &self.distance_to_centroid);
        put(&mut m, "weight", &self.weight);
        put(&mut m, "profiled_count", &self.profiled_count);
        put(&mut m, "member_cycles", &self.member_cycles);
        put(&mut m, "member_mean_ci_low", &self.member_mean_ci_low);
        put(&mut m, "member_mean_ci_high", &self.member_mean_ci_high);
        put(&mut m, "rep_cycles_pks", &self.rep_cycles_pks);
        put_opt(&mut m, "rep_cycles_pka", &self.rep_cycles_pka);
        put_opt(&mut m, "skip_ratio", &self.skip_ratio);
        put(&mut m, "pks_term_pct", &self.pks_term_pct);
        put_opt(&mut m, "pkp_term_pct", &self.pkp_term_pct);
        put(&mut m, "total_term_pct", &self.total_term_pct);
        put_opt(&mut m, "dram_util_pct", &self.dram_util_pct);
        put_opt(&mut m, "dram_share_pct", &self.dram_share_pct);
        Value::Object(m)
    }
}

impl Deserialize for GroupAttribution {
    fn from_json_value(value: &Value) -> Result<Self, ValueError> {
        Ok(Self {
            group: req(value, "group")?,
            representative: req(value, "representative")?,
            chrono_rank: req(value, "chrono_rank")?,
            distance_to_centroid: req(value, "distance_to_centroid")?,
            weight: req(value, "weight")?,
            profiled_count: req(value, "profiled_count")?,
            member_cycles: req(value, "member_cycles")?,
            member_mean_ci_low: req(value, "member_mean_ci_low")?,
            member_mean_ci_high: req(value, "member_mean_ci_high")?,
            rep_cycles_pks: req(value, "rep_cycles_pks")?,
            rep_cycles_pka: opt(value, "rep_cycles_pka")?,
            skip_ratio: opt(value, "skip_ratio")?,
            pks_term_pct: req(value, "pks_term_pct")?,
            pkp_term_pct: opt(value, "pkp_term_pct")?,
            total_term_pct: req(value, "total_term_pct")?,
            dram_util_pct: opt(value, "dram_util_pct")?,
            dram_share_pct: opt(value, "dram_share_pct")?,
        })
    }
}

impl Serialize for ErrorAttribution {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        put(&mut m, "schema", &self.schema);
        put(&mut m, "workload", &self.workload);
        put(&mut m, "kind", &self.kind);
        put(&mut m, "reference_cycles", &self.reference_cycles);
        put(&mut m, "pks_projected_cycles", &self.pks_projected_cycles);
        put_opt(&mut m, "pka_projected_cycles", &self.pka_projected_cycles);
        put(&mut m, "pks_err_signed_pct", &self.pks_err_signed_pct);
        put(&mut m, "pks_err_pct", &self.pks_err_pct);
        put_opt(&mut m, "pka_err_signed_pct", &self.pka_err_signed_pct);
        put_opt(&mut m, "pka_err_pct", &self.pka_err_pct);
        put_opt(&mut m, "dram_util_pct", &self.dram_util_pct);
        put(&mut m, "groups", &self.groups);
        if !self.shards.is_empty() {
            put(&mut m, "shards", &self.shards);
        }
        Value::Object(m)
    }
}

impl Deserialize for ErrorAttribution {
    fn from_json_value(value: &Value) -> Result<Self, ValueError> {
        Ok(Self {
            schema: req(value, "schema")?,
            workload: req(value, "workload")?,
            kind: req(value, "kind")?,
            reference_cycles: req(value, "reference_cycles")?,
            pks_projected_cycles: req(value, "pks_projected_cycles")?,
            pka_projected_cycles: opt(value, "pka_projected_cycles")?,
            pks_err_signed_pct: req(value, "pks_err_signed_pct")?,
            pks_err_pct: req(value, "pks_err_pct")?,
            pka_err_signed_pct: opt(value, "pka_err_signed_pct")?,
            pka_err_pct: opt(value, "pka_err_pct")?,
            dram_util_pct: opt(value, "dram_util_pct")?,
            groups: req(value, "groups")?,
            shards: if value["shards"].is_null() {
                Vec::new()
            } else {
                req(value, "shards")?
            },
        })
    }
}

fn signed_pct(projected: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        0.0
    } else {
        (projected - reference) / reference * 100.0
    }
}

impl ErrorAttribution {
    /// Sum of the signed per-group PKS terms.
    pub fn pks_term_sum(&self) -> f64 {
        self.groups.iter().map(|g| g.pks_term_pct).sum()
    }

    /// Sum of the signed per-group total terms.
    pub fn total_term_sum(&self) -> f64 {
        self.groups.iter().map(|g| g.total_term_pct).sum()
    }

    /// Sum of the per-group DRAM shares, when present.
    pub fn dram_share_sum(&self) -> Option<f64> {
        if self.groups.iter().all(|g| g.dram_share_pct.is_some()) && !self.groups.is_empty() {
            Some(self.groups.iter().filter_map(|g| g.dram_share_pct).sum())
        } else {
            None
        }
    }

    /// Enforces the sum-to-total invariant: the absolute value of each
    /// signed term sum must match the reported error within 1e-9 relative
    /// (and the DRAM shares must sum to the reported utilisation).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated total.
    pub fn verify_sums(&self) -> Result<(), String> {
        let check = |name: &str, sum: f64, reported: f64| -> Result<(), String> {
            if (sum - reported).abs() <= SUM_REL_TOL * reported.abs().max(1.0) {
                Ok(())
            } else {
                Err(format!(
                    "{name}: per-group terms sum to {sum}, pipeline reported {reported}"
                ))
            }
        };
        check("pks_err_pct", self.pks_term_sum().abs(), self.pks_err_pct)?;
        check("pks_err_signed_pct", self.pks_term_sum(), self.pks_err_signed_pct)?;
        if let (Some(signed), Some(abs)) = (self.pka_err_signed_pct, self.pka_err_pct) {
            check("pka_err_pct", self.total_term_sum().abs(), abs)?;
            check("pka_err_signed_pct", self.total_term_sum(), signed)?;
        }
        if let (Some(sum), Some(reported)) = (self.dram_share_sum(), self.dram_util_pct) {
            check("dram_util_pct", sum, reported)?;
        }
        Ok(())
    }
}

/// Builds a selection-kind attribution: the truth is the profiled members'
/// measured cycles, so each group's signed term is its representative
/// scaled by the *profiled* member count against the members' total —
/// exactly the quantity [`Selection::error_pct`] aggregates. Valid at any
/// point of a streaming run: tail classification only grows the projection
/// weights, never the profiled population.
///
/// # Panics
///
/// Panics when `provenance.len() != selection.k()`.
pub fn selection_attribution(
    workload: &str,
    selection: &Selection,
    provenance: &[GroupProvenance],
) -> ErrorAttribution {
    assert_eq!(
        provenance.len(),
        selection.k(),
        "one provenance entry per group"
    );
    let reference = selection.reference_cycles();
    let reference_f = reference as f64;
    let groups: Vec<GroupAttribution> = selection
        .groups()
        .iter()
        .zip(provenance)
        .enumerate()
        .map(|(i, (g, p))| {
            let scaled = g.representative_cycles() as f64 * g.profiled_count() as f64;
            let term = if reference == 0 {
                0.0
            } else {
                (scaled - g.member_cycles() as f64) / reference_f * 100.0
            };
            GroupAttribution {
                group: i,
                representative: g.representative().index(),
                chrono_rank: p.chrono_rank,
                distance_to_centroid: p.distance_to_centroid,
                weight: g.count(),
                profiled_count: g.profiled_count(),
                member_cycles: g.member_cycles(),
                member_mean_ci_low: p.member_mean_ci_low,
                member_mean_ci_high: p.member_mean_ci_high,
                rep_cycles_pks: g.representative_cycles(),
                rep_cycles_pka: None,
                skip_ratio: None,
                pks_term_pct: term,
                pkp_term_pct: None,
                total_term_pct: term,
                dram_util_pct: None,
                dram_share_pct: None,
            }
        })
        .collect();
    let projected_profiled: u64 = selection
        .groups()
        .iter()
        .map(|g| g.representative_cycles() * g.profiled_count())
        .sum();
    ErrorAttribution {
        schema: ATTRIBUTION_SCHEMA.to_string(),
        workload: workload.to_string(),
        kind: "selection".to_string(),
        reference_cycles: reference,
        pks_projected_cycles: selection.projected_cycles(),
        pka_projected_cycles: None,
        pks_err_signed_pct: signed_pct(projected_profiled as f64, reference_f),
        pks_err_pct: selection.error_pct(),
        pka_err_signed_pct: None,
        pka_err_pct: None,
        dram_util_pct: None,
        groups,
        shards: Vec::new(),
    }
}

/// Builds a simulation-kind attribution against silicon truth.
///
/// Each group's share of the silicon total is its profiled members'
/// measured cycles plus a proportional share of the residual (silicon
/// cycles not covered by detailed profiling — the two-level classified
/// tail, apportioned by classified counts). The PKS term scales the fully
/// simulated representative by the group weight against that share; the PKP
/// term is the stop-rule projection minus the full simulation, scaled by
/// the weight. Both telescope: the signed sums reproduce the
/// `SimulationReport`'s `pks_error_pct` / `pka_error_pct`.
///
/// # Panics
///
/// Panics when `reps` or `provenance` do not have one entry per group.
pub fn simulation_attribution(
    workload: &str,
    selection: &Selection,
    provenance: &[GroupProvenance],
    silicon_cycles: u64,
    reps: &[RepSimulation],
) -> ErrorAttribution {
    assert_eq!(reps.len(), selection.k(), "one simulation sample per group");
    assert_eq!(
        provenance.len(),
        selection.k(),
        "one provenance entry per group"
    );
    let silicon = silicon_cycles as f64;
    let member_total: u64 = selection.groups().iter().map(|g| g.member_cycles()).sum();
    let classified_total: u64 = selection
        .groups()
        .iter()
        .map(|g| g.count() - g.profiled_count())
        .sum();
    let residual = silicon - member_total as f64;

    // Accumulate the DRAM reduction in group order with the exact fold the
    // pipeline uses, so the reported utilisation is reproduced bit-for-bit.
    let mut dram_weighted = 0.0f64;
    let mut dram_weight = 0.0f64;
    for r in reps {
        dram_weighted += r.dram_util_pct * r.pka_cycles as f64;
        dram_weight += r.pka_cycles as f64;
    }
    let dram_util = dram_weighted / dram_weight.max(1e-12);

    let groups: Vec<GroupAttribution> = selection
        .groups()
        .iter()
        .zip(provenance)
        .zip(reps)
        .enumerate()
        .map(|(i, ((g, p), r))| {
            let classified = g.count() - g.profiled_count();
            let truth_share = if classified_total > 0 {
                classified as f64 / classified_total as f64
            } else if member_total > 0 {
                g.member_cycles() as f64 / member_total as f64
            } else if i == 0 {
                1.0
            } else {
                0.0
            };
            let truth = g.member_cycles() as f64 + residual * truth_share;
            let (pks_term, pkp_term) = if silicon_cycles == 0 {
                (0.0, 0.0)
            } else {
                (
                    (r.pks_cycles as f64 * g.count() as f64 - truth) / silicon * 100.0,
                    (r.pka_cycles as f64 - r.pks_cycles as f64) * g.count() as f64 / silicon
                        * 100.0,
                )
            };
            GroupAttribution {
                group: i,
                representative: g.representative().index(),
                chrono_rank: p.chrono_rank,
                distance_to_centroid: p.distance_to_centroid,
                weight: g.count(),
                profiled_count: g.profiled_count(),
                member_cycles: g.member_cycles(),
                member_mean_ci_low: p.member_mean_ci_low,
                member_mean_ci_high: p.member_mean_ci_high,
                rep_cycles_pks: r.pks_cycles,
                rep_cycles_pka: Some(r.pka_cycles),
                skip_ratio: Some(r.simulated_cycles as f64 / r.pka_cycles.max(1) as f64),
                pks_term_pct: pks_term,
                pkp_term_pct: Some(pkp_term),
                total_term_pct: pks_term + pkp_term,
                dram_util_pct: Some(r.dram_util_pct),
                dram_share_pct: Some(
                    r.dram_util_pct * r.pka_cycles as f64 / dram_weight.max(1e-12),
                ),
            }
        })
        .collect();

    let pks_projected: u64 = selection
        .groups()
        .iter()
        .zip(reps)
        .map(|(g, r)| r.pks_cycles * g.count())
        .sum();
    let pka_projected: u64 = selection
        .groups()
        .iter()
        .zip(reps)
        .map(|(g, r)| r.pka_cycles * g.count())
        .sum();
    ErrorAttribution {
        schema: ATTRIBUTION_SCHEMA.to_string(),
        workload: workload.to_string(),
        kind: "simulation".to_string(),
        reference_cycles: silicon_cycles,
        pks_projected_cycles: pks_projected,
        pka_projected_cycles: Some(pka_projected),
        pks_err_signed_pct: signed_pct(pks_projected as f64, silicon),
        pks_err_pct: pka_stats::error::abs_pct_error(pks_projected as f64, silicon),
        pka_err_signed_pct: Some(signed_pct(pka_projected as f64, silicon)),
        pka_err_pct: Some(pka_stats::error::abs_pct_error(pka_projected as f64, silicon)),
        dram_util_pct: Some(dram_util),
        groups,
        shards: Vec::new(),
    }
}
