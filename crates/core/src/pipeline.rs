use pka_gpu::GpuConfig;
use pka_profile::Profiler;
use pka_sim::{cost, SimOptions, Simulator};
use pka_stats::error::abs_pct_error;
use pka_stats::Executor;
use pka_workloads::Workload;

use crate::{
    selection_attribution, simulation_attribution, ErrorAttribution, PkaError, Pks, PkpConfig,
    PkpMonitor, PksConfig, ProjectedKernel, RepSimulation, Selection, TwoLevel, TwoLevelConfig,
};

/// End-to-end PKA configuration: selection, projection, two-level and
/// simulator knobs.
///
/// # Examples
///
/// ```
/// use pka_core::PkaConfig;
///
/// let config = PkaConfig::default();
/// assert_eq!(config.pks().target_error_pct(), 5.0);
/// assert_eq!(config.pkp().threshold(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PkaConfig {
    pks: PksConfig,
    pkp: PkpConfig,
    two_level: TwoLevelConfig,
    sim: SimOptions,
    exec: Executor,
}

impl PkaConfig {
    /// Overrides the PKS configuration (also applied inside two-level).
    pub fn with_pks(mut self, pks: PksConfig) -> Self {
        self.pks = pks;
        self.two_level = self.two_level.with_pks(pks);
        self
    }

    /// Overrides the PKP configuration.
    pub fn with_pkp(mut self, pkp: PkpConfig) -> Self {
        self.pkp = pkp;
        self
    }

    /// Overrides the two-level configuration (its PKS settings are kept in
    /// sync with [`with_pks`](Self::with_pks) if that is called afterwards).
    pub fn with_two_level(mut self, two_level: TwoLevelConfig) -> Self {
        self.two_level = two_level;
        self
    }

    /// Overrides the simulator options.
    pub fn with_sim_options(mut self, sim: SimOptions) -> Self {
        self.sim = sim;
        self
    }

    /// The PKS configuration.
    pub fn pks(&self) -> PksConfig {
        self.pks
    }

    /// The PKP configuration.
    pub fn pkp(&self) -> PkpConfig {
        self.pkp
    }

    /// The two-level configuration.
    pub fn two_level(&self) -> TwoLevelConfig {
        self.two_level
    }

    /// The simulator options.
    pub fn sim_options(&self) -> SimOptions {
        self.sim
    }

    /// Fans profiling, clustering and per-representative simulation out over
    /// `workers` threads (`0` = one per hardware thread, `1` = sequential).
    ///
    /// Every parallel path is deterministic: selections, projected cycles
    /// and error tables are bitwise identical for any worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.exec = if workers == 1 {
            Executor::sequential()
        } else {
            Executor::new(workers)
        };
        self
    }

    /// Overrides the executor directly.
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The executor the pipeline fans out on.
    pub fn executor(&self) -> Executor {
        self.exec
    }
}

/// Silicon-only PKS evaluation (the first six columns of Table 4): how well
/// do the representatives, *run on real silicon*, project the application?
#[derive(Debug, Clone, PartialEq)]
pub struct SiliconPksReport {
    /// Workload name.
    pub workload: String,
    /// GPU the representatives were (re-)executed on.
    pub gpu: String,
    /// Number of groups selected.
    pub k: usize,
    /// Kernels in the full stream.
    pub kernels_total: u64,
    /// Projected application cycles from the representatives.
    pub projected_cycles: u64,
    /// Measured full-application cycles.
    pub silicon_cycles: u64,
    /// Projection error, percent.
    pub error_pct: f64,
    /// Execution-time reduction: full app seconds over representative-only
    /// seconds.
    pub speedup: f64,
}

/// Per-representative PKP accounting: how much of the projected kernel was
/// actually simulated before the stopping rule fired. The table that makes
/// Table 4's speedups auditable kernel-by-kernel from one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepProjection {
    /// The representative kernel.
    pub kernel_id: pka_gpu::KernelId,
    /// Simulator cycles actually spent under the PKP monitor.
    pub simulated_cycles: u64,
    /// Cycles projected for the kernel (extrapolated past the stop point).
    pub projected_cycles: u64,
}

impl RepProjection {
    /// `simulated / projected`: the fraction of the kernel that was
    /// simulated (1.0 when PKP never stopped early).
    pub fn skip_ratio(&self) -> f64 {
        self.simulated_cycles as f64 / self.projected_cycles.max(1) as f64
    }
}

/// One sampled-simulation outcome (PKS-only or full PKA) plus the baseline
/// full-simulation numbers when they exist.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Workload name.
    pub workload: String,
    /// Measured silicon cycles (the error reference).
    pub silicon_cycles: u64,
    /// Full-simulation cycles, if full simulation was run.
    pub fullsim_cycles: Option<u64>,
    /// Full-simulation DRAM utilisation, percent.
    pub fullsim_dram_util_pct: Option<f64>,
    /// Full-simulation error versus silicon, percent.
    pub sim_error_pct: Option<f64>,
    /// Wall-clock hours to run the full simulation (projected via the cost
    /// model; derived from silicon cycles when full simulation was skipped).
    pub fullsim_hours: f64,

    /// PKS-only projected application cycles.
    pub pks_projected_cycles: u64,
    /// PKS-only projection error versus silicon, percent.
    pub pks_error_pct: f64,
    /// Simulator cycles actually spent for PKS-only (reps run to
    /// completion).
    pub pks_simulated_cycles: u64,
    /// Projected wall-clock hours for PKS-only simulation.
    pub pks_hours: f64,

    /// Full-PKA (PKS + PKP) projected application cycles.
    pub pka_projected_cycles: u64,
    /// Full-PKA projection error versus silicon, percent.
    pub pka_error_pct: f64,
    /// Simulator cycles actually spent for PKA (reps stopped at stability).
    pub pka_simulated_cycles: u64,
    /// Projected wall-clock hours for PKA simulation.
    pub pka_hours: f64,
    /// PKA-projected DRAM utilisation, percent (group-weighted).
    pub pka_dram_util_pct: f64,
    /// Per-representative `simulated / projected` PKP accounting, in
    /// representative (group) order.
    pub per_representative: Vec<RepProjection>,
}

impl SimulationReport {
    /// Simulation-time speedup of PKS over full simulation.
    pub fn pks_speedup(&self) -> f64 {
        self.reference_sim_cycles() as f64 / self.pks_simulated_cycles.max(1) as f64
    }

    /// Simulation-time speedup of PKA over full simulation.
    pub fn pka_speedup(&self) -> f64 {
        self.reference_sim_cycles() as f64 / self.pka_simulated_cycles.max(1) as f64
    }

    fn reference_sim_cycles(&self) -> u64 {
        self.fullsim_cycles.unwrap_or(self.silicon_cycles)
    }
}

/// The Principal Kernel Analysis pipeline bound to one GPU configuration.
#[derive(Debug, Clone)]
pub struct Pka {
    gpu: GpuConfig,
    config: PkaConfig,
    profiler: Profiler,
}

impl Pka {
    /// Creates the pipeline for `gpu`.
    pub fn new(gpu: GpuConfig, config: PkaConfig) -> Self {
        let profiler = Profiler::new(gpu.clone()).with_executor(config.exec);
        Self {
            gpu,
            config,
            profiler,
        }
    }

    /// The bound GPU configuration.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PkaConfig {
        &self.config
    }

    /// The profiler this pipeline profiles with.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Profiles the workload (automatically one-level or two-level per the
    /// one-week tractability rule) and selects principal kernels.
    ///
    /// # Errors
    ///
    /// Propagates profiling and clustering failures.
    pub fn select_kernels(&self, workload: &Workload) -> Result<Selection, PkaError> {
        let _span = pka_obs::span("pka.select_kernels");
        let cost = self.profiler.profiling_cost(workload);
        if cost.detailed_is_intractable() {
            TwoLevel::new(self.config.two_level)
                .with_executor(self.config.exec)
                .analyze(workload, &self.profiler)
        } else {
            let records = self
                .profiler
                .detailed(workload, 0..workload.kernel_count())?;
            Pks::new(self.config.pks)
                .with_executor(self.config.exec)
                .select(&records)
        }
    }

    /// Evaluates PKS against silicon on this pipeline's GPU (Table 4's
    /// Volta silicon columns).
    ///
    /// # Errors
    ///
    /// Propagates profiling and clustering failures.
    pub fn silicon_pks_report(&self, workload: &Workload) -> Result<SiliconPksReport, PkaError> {
        let selection = self.select_kernels(workload)?;
        self.silicon_report_for(workload, &selection)
    }

    /// Re-evaluates an existing selection (typically made on Volta) against
    /// this pipeline's silicon — the cross-generation transfer experiment
    /// of Section 5.2.2.
    ///
    /// # Errors
    ///
    /// Propagates silicon-model failures.
    pub fn silicon_report_for(
        &self,
        workload: &Workload,
        selection: &Selection,
    ) -> Result<SiliconPksReport, PkaError> {
        let _span = pka_obs::span("pka.silicon_report");
        let silicon = self.profiler.silicon_run(workload)?;
        // Run only the representatives on this GPU, one per work item; fold
        // the float seconds in representative order for bitwise stability.
        let reps: Vec<_> = selection.representative_ids();
        let rep_runs = self.config.exec.try_map(&reps, |_, id| {
            let records = self.profiler.detailed(workload, id.index()..id.index() + 1)?;
            Ok::<_, PkaError>((records[0].cycles, records[0].seconds))
        })?;
        let mut rep_cycles = Vec::with_capacity(selection.k());
        let mut rep_seconds = 0.0;
        for (cycles, seconds) in rep_runs {
            rep_cycles.push(cycles);
            rep_seconds += seconds;
        }
        let projected = selection.project_with(&rep_cycles);
        Ok(SiliconPksReport {
            workload: workload.name().to_string(),
            gpu: self.gpu.name().to_string(),
            k: selection.k(),
            kernels_total: workload.kernel_count(),
            projected_cycles: projected,
            silicon_cycles: silicon.total_cycles,
            error_pct: abs_pct_error(projected as f64, silicon.total_cycles as f64),
            speedup: silicon.total_seconds / rep_seconds.max(1e-12),
        })
    }

    /// The detailed records a selection over `workload` was derived from
    /// (the full stream, or the two-level detailed prefix), plus the PKS
    /// configuration that clustered them — the inputs the attribution
    /// provenance must be computed against.
    fn attribution_inputs(
        &self,
        workload: &Workload,
    ) -> Result<(Vec<pka_profile::DetailedRecord>, PksConfig), PkaError> {
        let cost = self.profiler.profiling_cost(workload);
        if cost.detailed_is_intractable() {
            let j = TwoLevel::new(self.config.two_level).detailed_prefix(workload);
            let records = self.profiler.detailed(workload, 0..j)?;
            Ok((records, self.config.two_level.pks()))
        } else {
            let records = self
                .profiler
                .detailed(workload, 0..workload.kernel_count())?;
            Ok((records, self.config.pks))
        }
    }

    /// Selects principal kernels and builds the selection-kind
    /// `pka.attribution/v1` decomposition: each group's signed contribution
    /// to the reported [`Selection::error_pct`], plus its representative's
    /// provenance (launch rank, distance to the PCA-space group mean,
    /// bootstrap CI on the mean member cycles).
    ///
    /// # Errors
    ///
    /// Propagates profiling and clustering failures.
    pub fn select_kernels_with_attribution(
        &self,
        workload: &Workload,
    ) -> Result<(Selection, ErrorAttribution), PkaError> {
        let selection = self.select_kernels(workload)?;
        let (records, pks_config) = self.attribution_inputs(workload)?;
        let provenance = Pks::new(pks_config).provenance(&records, &selection)?;
        let attribution = selection_attribution(workload.name(), &selection, &provenance);
        Ok((selection, attribution))
    }

    /// Full evaluation in simulation: full-sim baseline (optional — skip it
    /// for workloads where it is intractable), PKS-only, and full PKA.
    ///
    /// # Errors
    ///
    /// Propagates profiling, clustering and simulation failures.
    pub fn evaluate_in_simulation(
        &self,
        workload: &Workload,
        run_full_sim: bool,
    ) -> Result<SimulationReport, PkaError> {
        Ok(self.evaluate_inner(workload, run_full_sim, false)?.0)
    }

    /// [`evaluate_in_simulation`](Self::evaluate_in_simulation) plus the
    /// simulation-kind `pka.attribution/v1` decomposition: per group, a
    /// signed PKS term (group scaling against the group's share of silicon
    /// truth) and a signed PKP term (stop-rule projection against the full
    /// simulation of the representative), summing exactly to the report's
    /// `pks_error_pct` / `pka_error_pct`.
    ///
    /// # Errors
    ///
    /// Propagates profiling, clustering and simulation failures.
    pub fn evaluate_with_attribution(
        &self,
        workload: &Workload,
        run_full_sim: bool,
    ) -> Result<(SimulationReport, ErrorAttribution), PkaError> {
        let (report, attribution) = self.evaluate_inner(workload, run_full_sim, true)?;
        Ok((report, attribution.expect("attribution was requested")))
    }

    fn evaluate_inner(
        &self,
        workload: &Workload,
        run_full_sim: bool,
        with_attribution: bool,
    ) -> Result<(SimulationReport, Option<ErrorAttribution>), PkaError> {
        let _span = pka_obs::span("pka.evaluate");
        let selection = self.select_kernels(workload)?;
        let silicon = self.profiler.silicon_run(workload)?;
        let simulator = Simulator::new(self.gpu.clone(), self.config.sim);

        // Baseline: full simulation of every kernel, one per work item;
        // weighted DRAM utilisation folds in launch-stream order.
        let (fullsim_cycles, fullsim_dram, sim_error) = if run_full_sim {
            let _span = pka_obs::span("pka.fullsim_baseline");
            let ids: Vec<u64> = (0..workload.kernel_count()).collect();
            let runs = self.config.exec.try_map(&ids, |_, &id| {
                let kernel = workload.kernel(pka_gpu::KernelId::new(id));
                let r = simulator.run_kernel(&kernel)?;
                Ok::<_, PkaError>((r.cycles, r.dram_util_pct))
            })?;
            let mut total = 0u64;
            let mut dram_weighted = 0.0f64;
            for (cycles, dram_util_pct) in runs {
                total += cycles;
                dram_weighted += dram_util_pct * cycles as f64;
            }
            let dram = dram_weighted / total.max(1) as f64;
            (
                Some(total),
                Some(dram),
                Some(abs_pct_error(total as f64, silicon.total_cycles as f64)),
            )
        } else {
            (None, None, None)
        };

        // Each representative is one work item: PKS simulates it to
        // completion, PKA re-simulates it under a fresh PKP monitor. The
        // monitor is item-local state, so items stay independent; the
        // weighted DRAM reduction folds in representative order.
        let _rep_span = pka_obs::span("pka.rep_sim");
        let reps: Vec<_> = selection.representative_ids();
        let rep_runs = self.config.exec.try_map(&reps, |_, &id| {
            let kernel = workload.kernel(id);
            let full = simulator.run_kernel(&kernel)?;
            let mut monitor =
                PkpMonitor::new(self.config.pkp, self.config.sim.sample_interval());
            let stopped = simulator.run_kernel_monitored(&kernel, &mut monitor)?;
            let projected = ProjectedKernel::from_monitored(&stopped, &monitor);
            Ok::<_, PkaError>((full.cycles, projected))
        })?;

        // PKS-only: representatives simulated to completion.
        let mut pks_rep_cycles = Vec::with_capacity(selection.k());
        let mut pks_spent = 0u64;
        // Full PKA: representatives simulated under the PKP monitor.
        let mut pka_rep_cycles = Vec::with_capacity(selection.k());
        let mut pka_spent = 0u64;
        let mut pka_dram_weighted = 0.0f64;
        let mut pka_weight = 0.0f64;
        let mut per_representative = Vec::with_capacity(selection.k());
        let mut rep_samples = Vec::with_capacity(selection.k());
        for (&id, (full_cycles, projected)) in reps.iter().zip(rep_runs) {
            pks_rep_cycles.push(full_cycles);
            pks_spent += full_cycles;
            pka_rep_cycles.push(projected.cycles);
            pka_spent += projected.simulated_cycles;
            pka_dram_weighted += projected.dram_util_pct * projected.cycles as f64;
            pka_weight += projected.cycles as f64;
            per_representative.push(RepProjection {
                kernel_id: id,
                simulated_cycles: projected.simulated_cycles,
                projected_cycles: projected.cycles,
            });
            rep_samples.push(RepSimulation {
                pks_cycles: full_cycles,
                pka_cycles: projected.cycles,
                simulated_cycles: projected.simulated_cycles,
                dram_util_pct: projected.dram_util_pct,
            });
        }

        let pks_projected = selection.project_with(&pks_rep_cycles);
        let pka_projected = selection.project_with(&pka_rep_cycles);
        let fullsim_hours =
            cost::projected_sim_hours(fullsim_cycles.unwrap_or(silicon.total_cycles));

        let attribution = if with_attribution {
            let (records, pks_config) = self.attribution_inputs(workload)?;
            let provenance = Pks::new(pks_config).provenance(&records, &selection)?;
            Some(simulation_attribution(
                workload.name(),
                &selection,
                &provenance,
                silicon.total_cycles,
                &rep_samples,
            ))
        } else {
            None
        };

        let report = SimulationReport {
            workload: workload.name().to_string(),
            silicon_cycles: silicon.total_cycles,
            fullsim_cycles,
            fullsim_dram_util_pct: fullsim_dram,
            sim_error_pct: sim_error,
            fullsim_hours,
            pks_projected_cycles: pks_projected,
            pks_error_pct: abs_pct_error(pks_projected as f64, silicon.total_cycles as f64),
            pks_simulated_cycles: pks_spent,
            pks_hours: cost::projected_sim_hours(pks_spent),
            pka_projected_cycles: pka_projected,
            pka_error_pct: abs_pct_error(pka_projected as f64, silicon.total_cycles as f64),
            pka_simulated_cycles: pka_spent,
            pka_hours: cost::projected_sim_hours(pka_spent),
            pka_dram_util_pct: pka_dram_weighted / pka_weight.max(1e-12),
            per_representative,
        };
        Ok((report, attribution))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_workloads::{parboil, rodinia, Workload};

    fn find(suite: Vec<Workload>, name: &str) -> Workload {
        suite.into_iter().find(|w| w.name() == name).unwrap()
    }

    fn tiny_pka() -> Pka {
        // A small GPU keeps debug-mode simulation fast.
        let gpu = GpuConfig::builder("tiny8").num_sms(8).build().unwrap();
        Pka::new(gpu, PkaConfig::default())
    }

    #[test]
    fn silicon_report_on_gaussian_shows_large_speedup() {
        let pka = Pka::new(GpuConfig::v100(), PkaConfig::default());
        let w = find(rodinia::workloads(), "gauss_208");
        let report = pka.silicon_pks_report(&w).unwrap();
        assert!(report.error_pct < 6.0, "error {}", report.error_pct);
        assert!(report.speedup > 50.0, "speedup {}", report.speedup);
        assert_eq!(report.kernels_total, 414);
    }

    #[test]
    fn single_kernel_app_has_no_speedup() {
        let pka = Pka::new(GpuConfig::v100(), PkaConfig::default());
        let w = find(rodinia::workloads(), "nn");
        let report = pka.silicon_pks_report(&w).unwrap();
        assert_eq!(report.k, 1);
        assert!(report.speedup < 1.5, "{}", report.speedup);
        assert!(report.error_pct < 5.0);
    }

    #[test]
    fn cross_generation_transfer_keeps_error_low() {
        let volta = Pka::new(GpuConfig::v100(), PkaConfig::default());
        let w = find(rodinia::workloads(), "gauss_208");
        let selection = volta.select_kernels(&w).unwrap();
        for target in [GpuConfig::rtx2060(), GpuConfig::rtx3070()] {
            let pipeline = Pka::new(target, PkaConfig::default());
            let report = pipeline.silicon_report_for(&w, &selection).unwrap();
            assert!(
                report.error_pct < 10.0,
                "{}: {}",
                report.gpu,
                report.error_pct
            );
        }
    }

    #[test]
    fn simulation_report_accounts_time_and_error() {
        let pka = tiny_pka();
        let w = find(parboil::workloads(), "cutcp");
        let report = pka.evaluate_in_simulation(&w, true).unwrap();
        assert!(report.sim_error_pct.is_some());
        assert!(report.pks_simulated_cycles <= report.fullsim_cycles.unwrap());
        assert!(report.pka_simulated_cycles <= report.pks_simulated_cycles);
        assert!(report.pks_speedup() >= 1.0);
        assert!(report.pka_speedup() >= report.pks_speedup() * 0.99);
        // PKS projection should be a sane estimate of full sim.
        let fullsim = report.fullsim_cycles.unwrap() as f64;
        let pks_vs_full =
            (report.pks_projected_cycles as f64 - fullsim).abs() / fullsim * 100.0;
        assert!(pks_vs_full < 25.0, "pks vs fullsim {pks_vs_full}%");
    }

    #[test]
    fn per_representative_table_reconciles_with_totals() {
        let pka = tiny_pka();
        let w = find(parboil::workloads(), "cutcp");
        let report = pka.evaluate_in_simulation(&w, false).unwrap();
        assert!(!report.per_representative.is_empty());
        let simulated: u64 = report
            .per_representative
            .iter()
            .map(|r| r.simulated_cycles)
            .sum();
        assert_eq!(simulated, report.pka_simulated_cycles);
        for rep in &report.per_representative {
            let ratio = rep.skip_ratio();
            assert!(
                (0.0..=1.0 + 1e-9).contains(&ratio),
                "skip ratio {ratio} out of range for kernel {:?}",
                rep.kernel_id
            );
        }
    }

    #[test]
    fn simulation_attribution_sums_to_reported_errors() {
        let pka = tiny_pka();
        let w = find(parboil::workloads(), "cutcp");
        let (report, attribution) = pka.evaluate_with_attribution(&w, false).unwrap();
        attribution.verify_sums().expect("exact decomposition");
        assert_eq!(attribution.kind, "simulation");
        assert_eq!(attribution.pks_err_pct, report.pks_error_pct);
        assert_eq!(attribution.pka_err_pct, Some(report.pka_error_pct));
        assert_eq!(attribution.pks_projected_cycles, report.pks_projected_cycles);
        assert_eq!(
            attribution.pka_projected_cycles,
            Some(report.pka_projected_cycles)
        );
        assert_eq!(attribution.dram_util_pct, Some(report.pka_dram_util_pct));
        assert_eq!(attribution.groups.len(), report.per_representative.len());
        for (g, rep) in attribution.groups.iter().zip(&report.per_representative) {
            assert_eq!(g.representative, rep.kernel_id.index());
            assert_eq!(g.skip_ratio, Some(rep.skip_ratio()));
        }
        // Requesting the attribution must not perturb the report itself.
        let plain = pka.evaluate_in_simulation(&w, false).unwrap();
        assert_eq!(plain, report);
    }

    #[test]
    fn selection_attribution_sums_to_selection_error() {
        let pka = Pka::new(GpuConfig::v100(), PkaConfig::default());
        let w = find(rodinia::workloads(), "gauss_208");
        let (selection, attribution) = pka.select_kernels_with_attribution(&w).unwrap();
        attribution.verify_sums().expect("exact decomposition");
        assert_eq!(attribution.kind, "selection");
        assert_eq!(attribution.groups.len(), selection.k());
        assert_eq!(attribution.pks_err_pct, selection.error_pct());
        assert_eq!(attribution.reference_cycles, selection.reference_cycles());
        assert!(attribution.shards.is_empty());
        for g in &attribution.groups {
            assert_eq!(g.chrono_rank, 0, "first-chronological reps rank first");
            assert!(g.distance_to_centroid.is_finite());
            assert!(g.member_mean_ci_low <= g.member_mean_ci_high);
            assert!(g.rep_cycles_pka.is_none());
        }
    }

    #[test]
    fn skipping_full_sim_still_reports_sampled_numbers() {
        let pka = tiny_pka();
        let w = find(rodinia::workloads(), "bfs65536");
        let report = pka.evaluate_in_simulation(&w, false).unwrap();
        assert!(report.fullsim_cycles.is_none());
        assert!(report.sim_error_pct.is_none());
        assert!(report.pka_projected_cycles > 0);
        assert!(report.fullsim_hours > 0.0);
    }
}
