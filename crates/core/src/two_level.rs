use std::ops::Range;

use pka_gpu::KernelId;
use pka_ml::classify::{Classifier, Ensemble, GaussianNb, MlpClassifier, SgdClassifier};
use pka_ml::Matrix;
use pka_profile::{LightweightRecord, Profiler};
use pka_stats::Executor;
use pka_workloads::Workload;

use crate::{Pks, PksConfig, PkaError, Selection};

/// Tail kernels classified per parallel work item. Large enough that the
/// per-chunk overhead vanishes, small enough to load-balance millions of
/// lightweight records across workers.
const CLASSIFY_CHUNK: u64 = 4096;

/// Configuration for the two-level profiling pipeline.
///
/// # Examples
///
/// ```
/// use pka_core::TwoLevelConfig;
///
/// let config = TwoLevelConfig::default();
/// assert!(config.detailed_prefix_cap() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLevelConfig {
    pks: PksConfig,
    detailed_prefix_cap: u64,
    classifier_seed: u64,
}

impl Default for TwoLevelConfig {
    fn default() -> Self {
        Self {
            pks: PksConfig::default(),
            // The paper detail-profiles 20k of SSD training's 5.3M kernels.
            detailed_prefix_cap: 20_000,
            classifier_seed: 0,
        }
    }
}

impl TwoLevelConfig {
    /// Sets the PKS configuration applied to the detailed prefix.
    pub fn with_pks(mut self, pks: PksConfig) -> Self {
        self.pks = pks;
        self
    }

    /// Caps how many kernels are profiled in detail (the paper's *j*).
    pub fn with_detailed_prefix_cap(mut self, cap: u64) -> Self {
        self.detailed_prefix_cap = cap.max(1);
        self
    }

    /// Sets the classifier training seed.
    pub fn with_classifier_seed(mut self, seed: u64) -> Self {
        self.classifier_seed = seed;
        self
    }

    /// The PKS configuration.
    pub fn pks(&self) -> PksConfig {
        self.pks
    }

    /// The detailed-prefix cap *j*.
    pub fn detailed_prefix_cap(&self) -> u64 {
        self.detailed_prefix_cap
    }
}

/// The two-level profiling pipeline of Section 3.1 and Figure 3: detailed
/// profiling on the first *j* kernels, Principal Kernel Selection over
/// those, then an SGD + Gaussian-naive-Bayes + MLP majority-vote mapping of
/// every remaining lightweight record onto the detailed groups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLevel {
    config: TwoLevelConfig,
    exec: Executor,
}

impl TwoLevel {
    /// Creates the pipeline.
    pub fn new(config: TwoLevelConfig) -> Self {
        Self {
            config,
            exec: Executor::sequential(),
        }
    }

    /// Fans the detailed prefix, the clustering sweep and the tail
    /// classification out over `exec` (deterministic: per-chunk group counts
    /// are folded in stream order).
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The effective detailed prefix *j* for a workload: everything if the
    /// stream is small, the configured cap otherwise.
    pub fn detailed_prefix(&self, workload: &Workload) -> u64 {
        workload.kernel_count().min(self.config.detailed_prefix_cap)
    }

    /// Runs the full two-level analysis and returns a [`Selection`] whose
    /// group counts cover the *entire* stream (detailed members plus
    /// classified lightweight members).
    ///
    /// # Errors
    ///
    /// Propagates profiling, clustering and classification failures.
    pub fn analyze(&self, workload: &Workload, profiler: &Profiler) -> Result<Selection, PkaError> {
        let j = self.detailed_prefix(workload);
        let detailed = profiler.detailed(workload, 0..j)?;
        let mut selection = Pks::new(self.config.pks)
            .with_executor(self.exec)
            .select(&detailed)?;
        if j == workload.kernel_count() {
            return Ok(selection);
        }

        // Train the mapping on the detailed prefix's *lightweight* view —
        // at inference time only lightweight features exist.
        let train_span = pka_obs::span("two_level.train");
        let train_records = profiler.lightweight(workload, 0..j);
        let x = lightweight_matrix(&train_records)?;
        let y = selection.labels().to_vec();
        let seed = self.config.classifier_seed;
        let ensemble = Ensemble::new(vec![
            Box::new(SgdClassifier::fit(&x, &y, seed)?),
            Box::new(GaussianNb::fit(&x, &y)?),
            Box::new(MlpClassifier::fit(&x, &y, seed ^ 0xff)?),
        ]);
        drop(train_span);

        // Classify the tail — millions of kernels for MLPerf — in chunks:
        // each chunk streams its records one at a time (memory stays
        // O(chunks × k)) and reduces to per-group counts, which are folded
        // back in stream order. Group counts are order-independent sums, so
        // the result is identical for any worker count.
        let _classify_span = pka_obs::span("two_level.classify");
        let k = selection.k();
        let chunks: Vec<Range<u64>> = chunk_ranges(j, workload.kernel_count(), CLASSIFY_CHUNK);
        let counts = self.exec.try_map(&chunks, |_, chunk| {
            let mut counts = vec![0u64; k];
            for id in chunk.clone() {
                let kernel = workload.kernel(KernelId::new(id));
                let record = LightweightRecord::new(KernelId::new(id), &kernel);
                let group = ensemble.predict(&record.to_feature_vector())?;
                counts[group] += 1;
            }
            if pka_obs::enabled() {
                // One flush per chunk (CLASSIFY_CHUNK kernels), not per
                // prediction.
                pka_obs::counter("two_level.classified").add(chunk.end - chunk.start);
            }
            Ok::<_, PkaError>(counts)
        })?;
        for chunk_counts in counts {
            for (group, &n) in chunk_counts.iter().enumerate() {
                selection.add_classified_members(group, n);
            }
        }
        Ok(selection)
    }
}

/// Splits `[start, end)` into consecutive ranges of at most `chunk` items.
fn chunk_ranges(start: u64, end: u64, chunk: u64) -> Vec<Range<u64>> {
    let mut out = Vec::new();
    let mut lo = start;
    while lo < end {
        let hi = end.min(lo + chunk);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Builds the classifier feature matrix from lightweight records.
fn lightweight_matrix(records: &[LightweightRecord]) -> Result<Matrix, PkaError> {
    if records.is_empty() {
        return Err(PkaError::InvalidInput {
            message: "no lightweight records to train on".into(),
        });
    }
    let rows: Vec<Vec<f64>> = records.iter().map(|r| r.to_feature_vector()).collect();
    Ok(Matrix::from_rows(&rows)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_gpu::GpuConfig;
    use pka_workloads::polybench;

    fn gramschmidt() -> Workload {
        polybench::workloads()
            .into_iter()
            .find(|w| w.name() == "gramschmidt")
            .unwrap()
    }

    #[test]
    fn small_workload_short_circuits_to_one_level() {
        let w = polybench::workloads()
            .into_iter()
            .find(|w| w.name() == "fdtd2d")
            .unwrap();
        let profiler = Profiler::new(GpuConfig::v100());
        let two = TwoLevel::new(TwoLevelConfig::default());
        assert_eq!(two.detailed_prefix(&w), w.kernel_count());
        let sel = two.analyze(&w, &profiler).unwrap();
        assert_eq!(sel.kernels_represented(), w.kernel_count());
    }

    #[test]
    fn tail_kernels_are_classified_into_groups() {
        let w = gramschmidt();
        let profiler = Profiler::new(GpuConfig::v100());
        // Detail-profile only 600 of the 6411 kernels; classify the rest.
        let two = TwoLevel::new(TwoLevelConfig::default().with_detailed_prefix_cap(600));
        let sel = two.analyze(&w, &profiler).unwrap();
        assert_eq!(sel.kernels_represented(), w.kernel_count());
        assert!(sel.k() >= 2);
    }

    #[test]
    fn two_level_projection_stays_close_to_full_detail() {
        let w = gramschmidt();
        let profiler = Profiler::new(GpuConfig::v100());
        let silicon = profiler.silicon_run(&w).unwrap();

        let two = TwoLevel::new(TwoLevelConfig::default().with_detailed_prefix_cap(900));
        let sel = two.analyze(&w, &profiler).unwrap();
        let projected = sel.projected_cycles();
        let err = (projected as f64 - silicon.total_cycles as f64).abs()
            / silicon.total_cycles as f64
            * 100.0;
        // The paper's two-level workloads land around 10-30% error; the
        // classified tail must not destroy the projection.
        assert!(err < 40.0, "two-level projection error {err}%");
    }

    #[test]
    fn prefix_cap_is_respected() {
        let two = TwoLevel::new(TwoLevelConfig::default().with_detailed_prefix_cap(100));
        assert_eq!(two.detailed_prefix(&gramschmidt()), 100);
    }
}
