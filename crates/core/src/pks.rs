use pka_gpu::KernelId;
use serde::{Deserialize, Serialize};
use pka_ml::{KMeans, KMeansFit, Matrix, Pca, StandardScaler};
use pka_profile::DetailedRecord;
use pka_stats::error::abs_pct_error;
use pka_stats::hash::UnitStream;
use pka_stats::Executor;

use crate::{feature_matrix, PkaError};

/// How the principal (representative) kernel of each group is chosen.
///
/// Section 3.1 of the paper compares the three policies: random selection
/// has an inconsistent error rate, centre and first-chronological are
/// statistically indistinguishable, and first-chronological wins on
/// practical grounds (it minimises how far tracing has to run) — so it is
/// the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepresentativePolicy {
    /// The earliest-launched member of the group (the paper's choice).
    #[default]
    FirstChronological,
    /// The member closest to the cluster centroid.
    ClusterCentre,
    /// A uniformly random member (seeded; the paper's negative result).
    Random(u64),
}

/// Configuration for Principal Kernel Selection.
///
/// # Examples
///
/// ```
/// use pka_core::PksConfig;
///
/// let config = PksConfig::default();
/// assert_eq!(config.target_error_pct(), 5.0);
/// assert_eq!(config.max_k(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PksConfig {
    target_error_pct: f64,
    max_k: usize,
    pca_variance: f64,
    seed: u64,
    representative: RepresentativePolicy,
}

impl Default for PksConfig {
    fn default() -> Self {
        Self {
            target_error_pct: 5.0,
            max_k: 20,
            pca_variance: 0.95,
            seed: 0,
            representative: RepresentativePolicy::FirstChronological,
        }
    }
}

impl PksConfig {
    /// Sets the projected-cycle error (percent) under which the K sweep
    /// stops; the paper uses 5% for every result.
    pub fn with_target_error_pct(mut self, pct: f64) -> Self {
        self.target_error_pct = pct;
        self
    }

    /// Sets the largest K swept (paper: 20).
    pub fn with_max_k(mut self, max_k: usize) -> Self {
        self.max_k = max_k;
        self
    }

    /// Sets the fraction of variance PCA must retain.
    pub fn with_pca_variance(mut self, fraction: f64) -> Self {
        self.pca_variance = fraction;
        self
    }

    /// Sets the clustering seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the representative-selection policy.
    pub fn with_representative(mut self, policy: RepresentativePolicy) -> Self {
        self.representative = policy;
        self
    }

    /// The target projected-cycle error, percent.
    pub fn target_error_pct(&self) -> f64 {
        self.target_error_pct
    }

    /// The largest K swept.
    pub fn max_k(&self) -> usize {
        self.max_k
    }

    /// The PCA variance retention fraction.
    pub fn pca_variance(&self) -> f64 {
        self.pca_variance
    }

    /// The clustering seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The representative policy.
    pub fn representative(&self) -> RepresentativePolicy {
        self.representative
    }
}

/// One group of similar kernels with its principal (representative) member.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelGroup {
    representative: KernelId,
    representative_cycles: u64,
    count: u64,
    /// Members that were actually profiled in detail (`count` additionally
    /// includes kernels mapped in by two-level classification).
    profiled_count: u64,
    member_cycles: u64,
}

impl KernelGroup {
    /// The principal kernel that stands in for this group.
    pub fn representative(&self) -> KernelId {
        self.representative
    }

    /// The representative's measured silicon cycles.
    pub fn representative_cycles(&self) -> u64 {
        self.representative_cycles
    }

    /// How many kernels this group represents (the projection weight,
    /// including two-level-classified members).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// How many of this group's members were profiled in detail.
    pub fn profiled_count(&self) -> u64 {
        self.profiled_count
    }

    /// Total measured cycles of the (profiled) members.
    pub fn member_cycles(&self) -> u64 {
        self.member_cycles
    }
}

/// The output of Principal Kernel Selection: groups, their representatives,
/// and the projection bookkeeping of Table 3.
///
/// Serialisable: the reference tooling's artifact ships per-workload files
/// recording the group count, principal kernels and weights, and
/// `Selection` round-trips through serde the same way (the `pka select
/// --out` CLI path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    groups: Vec<KernelGroup>,
    labels: Vec<usize>,
    reference_cycles: u64,
    member_deviation_pct: f64,
}

impl Selection {
    /// Number of groups (the selected K).
    pub fn k(&self) -> usize {
        self.groups.len()
    }

    /// The groups, in cluster order.
    pub fn groups(&self) -> &[KernelGroup] {
        &self.groups
    }

    /// Group label of each input record, in input order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Representative kernel ids (the set that must be traced/simulated).
    pub fn representative_ids(&self) -> Vec<KernelId> {
        self.groups.iter().map(|g| g.representative).collect()
    }

    /// Total kernels represented across all groups.
    pub fn kernels_represented(&self) -> u64 {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// The projection: each representative's cycles scaled by its group
    /// population, summed.
    pub fn projected_cycles(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.representative_cycles * g.count)
            .sum()
    }

    /// Total measured cycles of the profiled population (the sweep's
    /// reference).
    pub fn reference_cycles(&self) -> u64 {
        self.reference_cycles
    }

    /// Projection error against the profiled population, percent: the
    /// representatives scaled by their *profiled* member counts, compared
    /// with those members' measured cycles. (For one-level selections this
    /// covers the whole stream; for two-level selections it covers the
    /// detailed prefix — the only population with a measured reference.)
    pub fn error_pct(&self) -> f64 {
        let projected: u64 = self
            .groups
            .iter()
            .map(|g| g.representative_cycles * g.profiled_count)
            .sum();
        abs_pct_error(projected as f64, self.reference_cycles as f64)
    }

    /// Cycle-weighted member dispersion, percent: the summed absolute
    /// difference between every profiled kernel's cycles and its group
    /// representative's cycles, relative to the total. The K sweep selects
    /// on this quantity rather than on [`error_pct`](Self::error_pct)
    /// alone — a total-cycle criterion can be satisfied by a K whose
    /// members' over- and under-estimates happen to cancel (or whose lone
    /// representative happens to sit at the population mean), and such a
    /// selection falls apart the moment the representatives are
    /// re-measured on another platform or in a simulator.
    pub fn group_deviation_pct(&self) -> f64 {
        self.member_deviation_pct
    }

    /// Projects application cycles from per-representative measurements
    /// taken elsewhere (another GPU generation, the simulator, PKP):
    /// `measured[i]` replaces group `i`'s representative cycles.
    ///
    /// # Panics
    ///
    /// Panics if `measured.len() != self.k()`.
    pub fn project_with(&self, measured: &[u64]) -> u64 {
        assert_eq!(measured.len(), self.k(), "one measurement per group");
        self.groups
            .iter()
            .zip(measured)
            .map(|(g, &c)| c * g.count)
            .sum()
    }

    /// Adds one unprofiled member to group `group` (the two-level mapping
    /// path: lightweight kernels classified into detailed groups).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn add_classified_member(&mut self, group: usize) {
        self.groups[group].count += 1;
    }

    /// Adds `n` unprofiled members to group `group` at once — the chunked
    /// (parallel) classification path folds per-chunk counts through this.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn add_classified_members(&mut self, group: usize, n: u64) {
        self.groups[group].count += n;
    }
}

/// Principal Kernel Selection: scaler → PCA → K-Means sweep → smallest K
/// under the error target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pks {
    config: PksConfig,
    exec: Executor,
}

/// Row count above which a parallel sweep clusters each K with a
/// chunk-parallel assignment step instead of fanning the independent K runs
/// out. At million-kernel scale one K's assignment dominates the sweep, and
/// walking K in ascending order with early exit at the winner beats
/// speculatively fitting all `max_k` candidates; below the threshold the
/// K-level fan-out amortises thread overhead better. Either strategy
/// returns bitwise-identical selections — each K's fit is worker-count
/// invariant — so this is purely a scheduling choice.
const INNER_PARALLEL_ROWS: usize = 8192;

impl Pks {
    /// Creates a selector running its K sweep sequentially.
    pub fn new(config: PksConfig) -> Self {
        Self {
            config,
            exec: Executor::sequential(),
        }
    }

    /// Fans the independent K=1..max_k clustering runs out over `exec`.
    ///
    /// Every K already derives its own RNG stream (`seed ^ k`), so the
    /// sweep's winner — chosen by scanning the candidates in ascending K —
    /// is bitwise identical for any worker count.
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// Runs selection over detailed profiling records.
    ///
    /// Sweeps K from 1 to `max_k` and keeps the smallest K whose projected
    /// total-cycle error is below the target; if no K satisfies it, the
    /// best-scoring K wins. The sweep reuses one PCA fit (the clustering
    /// input does not change with K).
    ///
    /// With a parallel [`Executor`] the candidate clusterings are fitted
    /// concurrently and the winner is picked by the same ascending-K scan;
    /// the sequential path instead stops fitting at the first K under the
    /// target. Both return the identical `Selection`.
    ///
    /// # Errors
    ///
    /// Returns [`PkaError::InvalidInput`] for an empty record set and
    /// propagates ML errors.
    pub fn select(&self, records: &[DetailedRecord]) -> Result<Selection, PkaError> {
        let _span = pka_obs::span("pks.select");
        let selection = self.select_inner(records)?;
        if pka_obs::enabled() {
            pka_obs::counter("pks.selections").incr();
            pka_obs::counter("pks.records").add(records.len() as u64);
            pka_obs::gauge("pks.selected_k").set(selection.k() as i64);
        }
        Ok(selection)
    }

    /// Computes each group representative's provenance for the error
    /// attribution artifact: its launch rank within the group, its distance
    /// to the group mean in the PCA-projected feature space the clustering
    /// ran in, and a seeded bootstrap confidence interval on the mean
    /// member cycles (the within-group variance witness).
    ///
    /// `records` must be the same detailed records `selection` was made
    /// from, in the same order — the preprocessing (scaler fit, PCA fit,
    /// projection) is re-derived from them exactly as
    /// [`select`](Self::select) derived it, so the distances are measured
    /// in the very space the groups were formed in.
    ///
    /// # Errors
    ///
    /// Returns [`PkaError::InvalidInput`] when `records` does not match the
    /// selection's label count, and propagates ML errors.
    pub fn provenance(
        &self,
        records: &[DetailedRecord],
        selection: &Selection,
    ) -> Result<Vec<crate::GroupProvenance>, PkaError> {
        if records.len() != selection.labels().len() {
            return Err(PkaError::InvalidInput {
                message: format!(
                    "provenance needs the selection's input records: got {} records for {} labels",
                    records.len(),
                    selection.labels().len()
                ),
            });
        }
        let features = feature_matrix(records)?;
        let (_, scaled) = StandardScaler::fit_transform(&features)?;
        let pca = Pca::full()
            .fit(&scaled)?
            .truncated_to_variance(self.config.pca_variance);
        let projected = pca.transform(&scaled)?;

        let k = selection.k();
        let dims = projected.cols();
        let mut sums = vec![0.0f64; k * dims];
        let mut counts = vec![0u64; k];
        for (i, &label) in selection.labels().iter().enumerate() {
            for (c, v) in projected.row(i).iter().enumerate() {
                sums[label * dims + c] += v;
            }
            counts[label] += 1;
        }

        selection
            .groups()
            .iter()
            .enumerate()
            .map(|(g, group)| {
                let mut rank = 0u64;
                let mut rep_row = None;
                let mut member_cycles = Vec::with_capacity(counts[g] as usize);
                for (i, &label) in selection.labels().iter().enumerate() {
                    if label != g {
                        continue;
                    }
                    if records[i].kernel_id == group.representative() {
                        rep_row = Some(i);
                        rank = member_cycles.len() as u64;
                    }
                    member_cycles.push(records[i].cycles as f64);
                }
                let rep_row = rep_row.ok_or_else(|| PkaError::InvalidInput {
                    message: format!(
                        "representative {:?} of group {g} is not among the records",
                        group.representative()
                    ),
                })?;
                let n = counts[g].max(1) as f64;
                let distance = projected
                    .row(rep_row)
                    .iter()
                    .enumerate()
                    .map(|(c, v)| {
                        let mean = sums[g * dims + c] / n;
                        (v - mean) * (v - mean)
                    })
                    .sum::<f64>()
                    .sqrt();
                let ci = pka_stats::bootstrap::bootstrap_ci(
                    &member_cycles,
                    pka_stats::summary::mean,
                    0.95,
                    self.config.seed ^ g as u64,
                );
                Ok(crate::GroupProvenance {
                    chrono_rank: rank,
                    distance_to_centroid: distance,
                    member_mean_ci_low: ci.low,
                    member_mean_ci_high: ci.high,
                })
            })
            .collect()
    }

    fn select_inner(&self, records: &[DetailedRecord]) -> Result<Selection, PkaError> {
        let features = feature_matrix(records)?;
        let projected;
        {
            let _span = pka_obs::span("pks.preprocess");
            let (_, scaled) = StandardScaler::fit_transform(&features)?;
            let pca = Pca::full()
                .fit(&scaled)?
                .truncated_to_variance(self.config.pca_variance);
            projected = pca.transform(&scaled)?;
        }
        let _sweep_span = pka_obs::span("pks.sweep");

        let reference: u64 = records.iter().map(|r| r.cycles).sum();
        let max_k = self.config.max_k.clamp(1, records.len());

        let mut best: Option<(f64, Selection)> = None;
        let mut consider = |selection: Selection| -> Option<Selection> {
            let err = selection.group_deviation_pct();
            if err <= self.config.target_error_pct {
                return Some(selection);
            }
            if best.as_ref().is_none_or(|(b, _)| err < *b) {
                best = Some((err, selection));
            }
            None
        };

        // The speculative all-K fit only pays when the fits genuinely run
        // concurrently; with the spawn clamp resolving to one thread (e.g.
        // a single-core host) it would just discard the early exit, making
        // `--workers` slower than sequential for free.
        let speculate = !self.exec.is_sequential() && self.exec.spawn_count(max_k) > 1;
        if !speculate || projected.rows() >= INNER_PARALLEL_ROWS {
            // Ascending-K walk with early exit at the winning K. A parallel
            // executor is spent *inside* each fit (chunked assignment) —
            // the million-kernel regime, where a single K dominates.
            for k in 1..=max_k {
                let selection = self.cluster_once(records, &projected, k, reference)?;
                if let Some(winner) = consider(selection) {
                    return Ok(winner);
                }
            }
        } else {
            let configs: Vec<KMeans> = (1..=max_k).map(|k| self.kmeans_for(k)).collect();
            let fits = KMeans::fit_batch(&configs, &projected, &self.exec)?;
            // Scan in ascending K, exactly like the sequential loop; the
            // surplus fits beyond the winning K are discarded unread.
            for fit in &fits {
                let selection = self.selection_from_fit(records, fit, &projected, reference);
                if let Some(winner) = consider(selection) {
                    return Ok(winner);
                }
            }
        }
        Ok(best.expect("max_k >= 1 so at least one clustering ran").1)
    }

    /// The K-Means configuration the sweep uses for one K.
    ///
    /// The executor stays sequential here: [`KMeans::fit_batch`] fans these
    /// configurations out at the K level, and the inner-parallel path wires
    /// the executor in explicitly via [`Pks::cluster_once`].
    fn kmeans_for(&self, k: usize) -> KMeans {
        KMeans::new(k).with_seed(self.config.seed ^ k as u64)
    }

    fn cluster_once(
        &self,
        records: &[DetailedRecord],
        projected: &Matrix,
        k: usize,
        reference: u64,
    ) -> Result<Selection, PkaError> {
        let fit = self
            .kmeans_for(k)
            .with_executor(self.exec)
            .fit(projected)?;
        Ok(self.selection_from_fit(records, &fit, projected, reference))
    }

    /// Builds the selection bookkeeping for one fitted clustering.
    fn selection_from_fit(
        &self,
        records: &[DetailedRecord],
        fit: &KMeansFit,
        projected: &Matrix,
        reference: u64,
    ) -> Selection {
        let labels = fit.labels().to_vec();
        let medoids = fit.medoids(projected);

        let mut groups: Vec<Option<KernelGroup>> = vec![None; fit.k()];
        let mut rng = UnitStream::new(match self.config.representative {
            RepresentativePolicy::Random(seed) => seed,
            _ => 0,
        });
        // First pass: counts and member cycles.
        for (i, &label) in labels.iter().enumerate() {
            let slot = &mut groups[label];
            match slot {
                Some(g) => {
                    g.count += 1;
                    g.profiled_count += 1;
                    g.member_cycles += records[i].cycles;
                }
                None => {
                    *slot = Some(KernelGroup {
                        representative: records[i].kernel_id,
                        representative_cycles: records[i].cycles,
                        count: 1,
                        profiled_count: 1,
                        member_cycles: records[i].cycles,
                    });
                }
            }
        }
        // Second pass: representative policy (first-chronological fell out
        // of the first pass because records are in launch order).
        match self.config.representative {
            RepresentativePolicy::FirstChronological => {}
            RepresentativePolicy::ClusterCentre => {
                for (g, medoid) in groups.iter_mut().zip(medoids) {
                    if let (Some(g), Some(m)) = (g.as_mut(), medoid) {
                        g.representative = records[m].kernel_id;
                        g.representative_cycles = records[m].cycles;
                    }
                }
            }
            RepresentativePolicy::Random(_) => {
                // Reservoir-sample one member per group.
                let mut seen = vec![0u64; groups.len()];
                for (i, &label) in labels.iter().enumerate() {
                    seen[label] += 1;
                    if rng.next_f64() < 1.0 / seen[label] as f64 {
                        if let Some(g) = groups[label].as_mut() {
                            g.representative = records[i].kernel_id;
                            g.representative_cycles = records[i].cycles;
                        }
                    }
                }
            }
        }

        // Compact labels to match the flattened group order (flattening
        // drops empty clusters but keeps ascending label order).
        let mut remap = vec![usize::MAX; fit.k()];
        {
            let mut next = 0usize;
            for (l, slot) in groups.iter().enumerate() {
                if slot.is_some() {
                    remap[l] = next;
                    next += 1;
                }
            }
        }
        let groups: Vec<KernelGroup> = groups.into_iter().flatten().collect();
        let labels: Vec<usize> = labels.into_iter().map(|l| remap[l]).collect();
        let member_deviation: f64 = labels
            .iter()
            .zip(records)
            .map(|(&l, r)| {
                (r.cycles as f64 - groups[l].representative_cycles as f64).abs()
            })
            .sum();
        let member_deviation_pct = if reference == 0 {
            0.0
        } else {
            member_deviation / reference as f64 * 100.0
        };

        Selection {
            groups,
            labels,
            reference_cycles: reference,
            member_deviation_pct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_gpu::GpuConfig;
    use pka_profile::Profiler;
    use pka_workloads::{polybench, rodinia, Workload};

    fn find(suite: Vec<Workload>, name: &str) -> Workload {
        suite.into_iter().find(|w| w.name() == name).unwrap()
    }

    fn profile_all(w: &Workload) -> Vec<pka_profile::DetailedRecord> {
        Profiler::new(GpuConfig::v100())
            .detailed(w, 0..w.kernel_count())
            .unwrap()
    }

    #[test]
    fn gaussian_folds_to_very_few_groups() {
        let w = find(rodinia::workloads(), "gauss_208");
        let records = profile_all(&w);
        let sel = Pks::new(PksConfig::default()).select(&records).unwrap();
        assert!(sel.k() <= 3, "k = {}", sel.k());
        assert!(sel.error_pct() <= 5.0, "error = {}", sel.error_pct());
        assert_eq!(sel.kernels_represented(), 414);
    }

    #[test]
    fn single_kernel_app_selects_itself() {
        let w = find(polybench::workloads(), "gemm");
        let records = profile_all(&w);
        let sel = Pks::new(PksConfig::default()).select(&records).unwrap();
        assert_eq!(sel.k(), 1);
        assert_eq!(sel.error_pct(), 0.0);
        assert_eq!(sel.representative_ids(), vec![KernelId::new(0)]);
    }

    #[test]
    fn first_chronological_picks_earliest_member() {
        let w = find(rodinia::workloads(), "bfs65536");
        let records = profile_all(&w);
        let sel = Pks::new(PksConfig::default()).select(&records).unwrap();
        // One homogeneous group: its representative must be kernel 0
        // (Table 3's selected id for this workload).
        assert_eq!(sel.k(), 1);
        assert_eq!(sel.groups()[0].representative(), KernelId::new(0));
    }

    #[test]
    fn heterogeneous_app_needs_multiple_groups() {
        let w = find(polybench::workloads(), "fdtd2d");
        let records = profile_all(&w);
        let sel = Pks::new(PksConfig::default()).select(&records).unwrap();
        assert!(sel.k() >= 2, "k = {}", sel.k());
        assert!(sel.error_pct() <= 5.0);
        // Group populations reflect the 1000/500 split.
        let mut counts: Vec<u64> = sel.groups().iter().map(|g| g.count()).collect();
        counts.sort_unstable();
        assert_eq!(counts.iter().sum::<u64>(), 1500);
    }

    #[test]
    fn projection_scales_reps_by_count() {
        let w = find(rodinia::workloads(), "bfs65536");
        let records = profile_all(&w);
        let sel = Pks::new(PksConfig::default()).select(&records).unwrap();
        let expected: u64 = sel
            .groups()
            .iter()
            .map(|g| g.representative_cycles() * g.count())
            .sum();
        assert_eq!(sel.projected_cycles(), expected);
        // project_with substitutes new measurements.
        let doubled: Vec<u64> = sel
            .groups()
            .iter()
            .map(|g| g.representative_cycles() * 2)
            .collect();
        assert_eq!(sel.project_with(&doubled), 2 * sel.projected_cycles());
    }

    #[test]
    fn policies_agree_on_homogeneous_groups() {
        let w = find(rodinia::workloads(), "bfs65536");
        let records = profile_all(&w);
        for policy in [
            RepresentativePolicy::FirstChronological,
            RepresentativePolicy::ClusterCentre,
            RepresentativePolicy::Random(7),
        ] {
            let sel = Pks::new(PksConfig::default().with_representative(policy))
                .select(&records)
                .unwrap();
            // Any member of a near-identical group projects well.
            assert!(sel.error_pct() < 10.0, "{policy:?}: {}", sel.error_pct());
        }
    }

    #[test]
    fn tighter_target_cannot_increase_error() {
        let w = find(polybench::workloads(), "gramschmidt");
        let records = profile_all(&w);
        let loose = Pks::new(PksConfig::default().with_target_error_pct(20.0))
            .select(&records)
            .unwrap();
        let tight = Pks::new(PksConfig::default().with_target_error_pct(1.0))
            .select(&records)
            .unwrap();
        assert!(tight.group_deviation_pct() <= loose.group_deviation_pct() + 1e-9);
        assert!(tight.k() >= loose.k());
    }

    #[test]
    fn add_classified_member_grows_count() {
        let w = find(rodinia::workloads(), "bfs65536");
        let records = profile_all(&w);
        let mut sel = Pks::new(PksConfig::default()).select(&records).unwrap();
        let before = sel.groups()[0].count();
        sel.add_classified_member(0);
        assert_eq!(sel.groups()[0].count(), before + 1);
    }

    #[test]
    fn empty_records_rejected() {
        assert!(matches!(
            Pks::new(PksConfig::default()).select(&[]),
            Err(PkaError::InvalidInput { .. })
        ));
    }
}
