use pka_ml::Matrix;
use pka_profile::DetailedRecord;

use crate::PkaError;

/// Assembles the PCA input matrix from detailed profiling records: one row
/// per kernel, one column per Table 2 metric (count metrics
/// log-compressed — see
/// [`KernelMetrics::to_feature_vector`](pka_gpu::KernelMetrics::to_feature_vector)).
///
/// # Errors
///
/// Returns [`PkaError::InvalidInput`] if `records` is empty.
///
/// # Examples
///
/// ```
/// use pka_core::feature_matrix;
/// use pka_gpu::GpuConfig;
/// use pka_profile::Profiler;
/// use pka_workloads::rodinia;
///
/// let w = rodinia::workloads()
///     .into_iter()
///     .find(|w| w.name() == "bfs65536")
///     .expect("exists");
/// let records = Profiler::new(GpuConfig::v100()).detailed(&w, 0..20)?;
/// let m = feature_matrix(&records)?;
/// assert_eq!(m.rows(), 20);
/// assert_eq!(m.cols(), 12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn feature_matrix(records: &[DetailedRecord]) -> Result<Matrix, PkaError> {
    if records.is_empty() {
        return Err(PkaError::InvalidInput {
            message: "no detailed profiling records".into(),
        });
    }
    let rows: Vec<Vec<f64>> = records
        .iter()
        .map(|r| r.metrics.to_feature_vector())
        .collect();
    Ok(Matrix::from_rows(&rows)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_records_rejected() {
        assert!(matches!(
            feature_matrix(&[]),
            Err(PkaError::InvalidInput { .. })
        ));
    }
}
