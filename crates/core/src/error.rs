use std::error::Error;
use std::fmt;

use pka_gpu::GpuError;
use pka_ml::MlError;
use pka_sim::SimError;

/// Errors produced by the PKA pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PkaError {
    /// A machine-learning stage failed.
    Ml(MlError),
    /// The GPU model rejected a kernel or configuration.
    Gpu(GpuError),
    /// The cycle-level simulator failed.
    Sim(SimError),
    /// The pipeline was invoked on unusable input.
    InvalidInput {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for PkaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PkaError::Ml(e) => write!(f, "ml stage failed: {e}"),
            PkaError::Gpu(e) => write!(f, "gpu model failed: {e}"),
            PkaError::Sim(e) => write!(f, "simulation failed: {e}"),
            PkaError::InvalidInput { message } => write!(f, "invalid input: {message}"),
        }
    }
}

impl Error for PkaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PkaError::Ml(e) => Some(e),
            PkaError::Gpu(e) => Some(e),
            PkaError::Sim(e) => Some(e),
            PkaError::InvalidInput { .. } => None,
        }
    }
}

#[doc(hidden)]
impl From<MlError> for PkaError {
    fn from(e: MlError) -> Self {
        PkaError::Ml(e)
    }
}

#[doc(hidden)]
impl From<GpuError> for PkaError {
    fn from(e: GpuError) -> Self {
        PkaError::Gpu(e)
    }
}

#[doc(hidden)]
impl From<SimError> for PkaError {
    fn from(e: SimError) -> Self {
        PkaError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PkaError::from(MlError::EmptyInput);
        assert!(e.to_string().contains("ml stage"));
        assert!(e.source().is_some());
        let e = PkaError::InvalidInput {
            message: "no kernels".into(),
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PkaError>();
    }
}
