use pka_sim::{KernelSimResult, SampleContext, SimControl, SimMonitor};
use pka_stats::RollingStats;

/// Configuration for Principal Kernel Projection.
///
/// # Examples
///
/// ```
/// use pka_core::PkpConfig;
///
/// let config = PkpConfig::default();
/// assert_eq!(config.threshold(), 0.25);
/// assert_eq!(config.window_cycles(), 3000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PkpConfig {
    threshold: f64,
    window_cycles: u64,
    enforce_wave: bool,
}

impl Default for PkpConfig {
    fn default() -> Self {
        Self {
            threshold: 0.25,
            window_cycles: 3000,
            enforce_wave: true,
        }
    }
}

impl PkpConfig {
    /// Sets the stability threshold `s` — the only user-facing PKP knob
    /// (Section 3.2). Interpreted against the *mean-normalised* windowed
    /// standard deviation of IPC, so one setting covers kernels whose
    /// absolute IPC differs by orders of magnitude. Smaller is stricter:
    /// the paper's Figure 5 sweeps {2.5, 0.25, 0.025} and settles on 0.25.
    pub fn with_threshold(mut self, s: f64) -> Self {
        self.threshold = s;
        self
    }

    /// Sets the rolling window length in cycles (paper: 3000).
    pub fn with_window_cycles(mut self, cycles: u64) -> Self {
        self.window_cycles = cycles;
        self
    }

    /// Enables or disables the full-wave constraint (Section 3.2 keeps it
    /// on, but waives it automatically for grids smaller than one wave;
    /// disabling it entirely is the ablation).
    pub fn with_wave_constraint(mut self, enforce: bool) -> Self {
        self.enforce_wave = enforce;
        self
    }

    /// The stability threshold `s`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The rolling window length, cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Whether the full-wave constraint is enforced.
    pub fn wave_constraint(&self) -> bool {
        self.enforce_wave
    }
}

/// The online IPC-stability detector: plugs into the simulator as a
/// [`SimMonitor`] and stops the kernel once the windowed relative standard
/// deviation of IPC falls below `s` *and* (for at-least-one-wave grids) a
/// full wave of thread blocks has retired.
///
/// # Examples
///
/// ```
/// use pka_core::{PkpConfig, PkpMonitor};
/// use pka_gpu::{GpuConfig, KernelDescriptor};
/// use pka_sim::{SimOptions, Simulator};
///
/// let sim = Simulator::new(GpuConfig::v100(), SimOptions::default());
/// let kernel = KernelDescriptor::builder("k")
///     .grid_blocks(4000)
///     .block_threads(256)
///     .fp32_per_thread(300)
///     .global_loads_per_thread(8)
///     .build()?;
/// let mut monitor = PkpMonitor::new(PkpConfig::default(), sim.options().sample_interval());
/// let result = sim.run_kernel_monitored(&kernel, &mut monitor)?;
/// assert!(result.early_stop, "a stable kernel should stop early");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PkpMonitor {
    config: PkpConfig,
    window: RollingStats,
    /// Exponential smoothing state for the raw per-interval IPC samples
    /// (interval-level sampling of a bursty issue stream is far noisier
    /// than the hardware per-cycle IPC the paper's figures show).
    ema: Option<f64>,
    stopped_at: Option<u64>,
}

/// Smoothing weight for incoming IPC samples.
const EMA_ALPHA: f64 = 0.3;

impl PkpMonitor {
    /// Creates a monitor; `sample_interval` must match the simulator's
    /// [`SimOptions::sample_interval`](pka_sim::SimOptions::sample_interval)
    /// so the window spans the configured number of *cycles*.
    pub fn new(config: PkpConfig, sample_interval: u64) -> Self {
        let samples = (config.window_cycles / sample_interval.max(1)).max(2) as usize;
        Self {
            config,
            window: RollingStats::new(samples),
            ema: None,
            stopped_at: None,
        }
    }

    /// The smoothed IPC over the stability window (meaningful once samples
    /// have arrived; used for instruction-based projection of sub-wave
    /// grids, where the whole-run average would be polluted by the warmup
    /// ramp).
    pub fn stable_ipc(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.window.mean())
        }
    }

    /// The cycle at which stability was declared, if it was.
    pub fn stopped_at(&self) -> Option<u64> {
        self.stopped_at
    }
}

impl SimMonitor for PkpMonitor {
    fn observe(&mut self, ctx: &SampleContext) -> SimControl {
        let obs = pka_obs::enabled();
        if obs {
            pkp_obs().evals.incr();
        }
        let smoothed = match self.ema {
            Some(prev) => prev + EMA_ALPHA * (ctx.sample.ipc - prev),
            None => ctx.sample.ipc,
        };
        self.ema = Some(smoothed);
        self.window.push(smoothed);
        if !self.window.is_full() {
            if obs {
                pkp_obs().held_warmup.incr();
            }
            return SimControl::Continue;
        }
        if self.window.relative_std_dev() > self.config.threshold {
            if obs {
                pkp_obs().held_stddev.incr();
            }
            return SimControl::Continue;
        }
        // Quasi-stable. Enforce the wave constraint unless the grid is
        // smaller than one wave (Section 3.2's carve-out for low-CTA
        // kernels).
        let sub_wave = ctx.blocks_total < ctx.wave_blocks;
        if self.config.enforce_wave && !sub_wave && ctx.blocks_completed < ctx.wave_blocks {
            if obs {
                pkp_obs().held_wave.incr();
            }
            return SimControl::Continue;
        }
        self.stopped_at = Some(ctx.sample.cycle);
        if obs {
            pkp_obs().stops.incr();
            pkp_obs().stop_cycle.record(ctx.sample.cycle);
            // Stop-rule firings are rare and load-bearing, so they are
            // promoted from counters to timestamped trace events. Fields
            // are deterministic; when the firing happens on an executor
            // worker, the capture buffer keeps trace order deterministic
            // too.
            pka_obs::trace_event_u64(
                "pkp.stop",
                &[
                    ("cycle", ctx.sample.cycle),
                    ("blocks_completed", ctx.blocks_completed),
                    ("blocks_total", ctx.blocks_total),
                ],
            );
        }
        SimControl::Stop
    }
}

/// Cached stop-rule counter handles (one relaxed load gates each use).
struct PkpObs {
    evals: &'static pka_obs::Counter,
    held_warmup: &'static pka_obs::Counter,
    held_stddev: &'static pka_obs::Counter,
    held_wave: &'static pka_obs::Counter,
    stops: &'static pka_obs::Counter,
    stop_cycle: &'static pka_obs::Histogram,
}

/// Bucket edges (simulated cycles at stop) for the `pkp.stop_cycle`
/// histogram: log-spaced from the warmup floor to well past any kernel the
/// studied suites launch, so the stopping rule's firing profile is visible
/// live, Figure-9 style.
const STOP_CYCLE_EDGES: &[u64] = &[
    1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000,
];

fn pkp_obs() -> &'static PkpObs {
    static OBS: std::sync::OnceLock<PkpObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| PkpObs {
        evals: pka_obs::counter("pkp.evals"),
        held_warmup: pka_obs::counter("pkp.held_warmup"),
        held_stddev: pka_obs::counter("pkp.held_stddev"),
        held_wave: pka_obs::counter("pkp.held_wave"),
        stops: pka_obs::counter("pkp.stops"),
        stop_cycle: pka_obs::histogram("pkp.stop_cycle", STOP_CYCLE_EDGES),
    })
}

/// A PKP-projected kernel result: what the full kernel would have reported,
/// extrapolated from the simulated prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectedKernel {
    /// Projected total kernel cycles.
    pub cycles: u64,
    /// Projected total warp instructions.
    pub instructions: u64,
    /// Projected DRAM utilisation, percent (the stable-window average).
    pub dram_util_pct: f64,
    /// Projected L2 miss rate, percent.
    pub l2_miss_rate_pct: f64,
    /// Cycles actually simulated before stopping.
    pub simulated_cycles: u64,
    /// `true` if the kernel was stopped early and projected.
    pub projected: bool,
}

impl ProjectedKernel {
    /// Projects a (possibly early-stopped) simulation result.
    ///
    /// Grids of at least one wave project linearly from retired thread
    /// blocks, exactly as Section 3.2 describes; sub-wave grids (where the
    /// wave constraint is waived and block completions may be too sparse to
    /// extrapolate) project from remaining instructions at the observed
    /// IPC. Prefer [`from_monitored`](Self::from_monitored), which uses the
    /// monitor's stability-window IPC for the sub-wave case.
    pub fn from_result(result: &KernelSimResult) -> Self {
        Self::project(result, None)
    }

    /// Projects using the monitor's stable-window IPC for sub-wave grids —
    /// the whole-run average the plain instruction projection would use is
    /// biased by the warmup ramp.
    pub fn from_monitored(result: &KernelSimResult, monitor: &PkpMonitor) -> Self {
        Self::project(result, monitor.stable_ipc())
    }

    fn project(result: &KernelSimResult, stable_ipc: Option<f64>) -> Self {
        let cycles = if result.blocks_total >= result.wave_blocks {
            result.projected_total_cycles()
        } else if let (true, Some(ipc)) = (result.early_stop, stable_ipc.filter(|i| *i > 0.0)) {
            let remaining = result
                .instructions_total
                .saturating_sub(result.instructions) as f64;
            result.cycles + (remaining / ipc) as u64
        } else {
            result.projected_total_cycles_by_instructions()
        };
        ProjectedKernel {
            cycles,
            instructions: result.instructions_total,
            dram_util_pct: result.dram_util_pct,
            l2_miss_rate_pct: result.l2_miss_rate_pct,
            simulated_cycles: result.cycles,
            projected: result.early_stop,
        }
    }

    /// The intra-kernel speedup PKP achieved (projected over simulated
    /// cycles; 1.0 when the kernel ran to completion).
    pub fn speedup(&self) -> f64 {
        if self.simulated_cycles == 0 {
            1.0
        } else {
            self.cycles as f64 / self.simulated_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_gpu::{GpuConfig, KernelDescriptor, KernelPhase};
    use pka_sim::{SimOptions, Simulator};

    fn tiny() -> Simulator {
        Simulator::new(
            GpuConfig::builder("tiny4").num_sms(4).build().unwrap(),
            SimOptions::default(),
        )
    }

    fn stable_kernel(blocks: u32) -> KernelDescriptor {
        KernelDescriptor::builder("stable")
            .grid_blocks(blocks)
            .block_threads(128)
            .fp32_per_thread(400)
            .global_loads_per_thread(10)
            .build()
            .unwrap()
    }

    #[test]
    fn stable_kernel_stops_early_with_low_error() {
        let sim = tiny();
        let k = stable_kernel(512);
        let full = sim.run_kernel(&k).unwrap();
        let mut m = PkpMonitor::new(PkpConfig::default(), sim.options().sample_interval());
        let partial = sim.run_kernel_monitored(&k, &mut m).unwrap();
        assert!(partial.early_stop);
        assert!(m.stopped_at().is_some());
        let projected = ProjectedKernel::from_result(&partial);
        assert!(projected.projected);
        assert!(projected.speedup() > 1.2, "{}", projected.speedup());
        let err = (projected.cycles as f64 - full.cycles as f64).abs() / full.cycles as f64;
        assert!(err < 0.35, "projection error {err}");
    }

    #[test]
    fn wave_constraint_delays_stop() {
        let sim = tiny();
        let k = stable_kernel(512);
        let mut with_wave = PkpMonitor::new(PkpConfig::default(), 200);
        let mut without = PkpMonitor::new(
            PkpConfig::default().with_wave_constraint(false),
            200,
        );
        let a = sim.run_kernel_monitored(&k, &mut with_wave).unwrap();
        let b = sim.run_kernel_monitored(&k, &mut without).unwrap();
        assert!(a.cycles >= b.cycles, "{} < {}", a.cycles, b.cycles);
        // With the constraint, at least one wave retired before the stop.
        assert!(a.blocks_completed >= a.wave_blocks);
    }

    #[test]
    fn sub_wave_grid_waives_the_constraint() {
        let sim = tiny();
        // 8 blocks on a 4-SM part with plenty of occupancy: well under one
        // wave, but long enough to stabilise.
        let k = KernelDescriptor::builder("small_grid")
            .grid_blocks(8)
            .block_threads(128)
            .fp32_per_thread(20_000)
            .global_loads_per_thread(200)
            .build()
            .unwrap();
        let mut m = PkpMonitor::new(PkpConfig::default(), 200);
        let r = sim.run_kernel_monitored(&k, &mut m).unwrap();
        assert!(r.early_stop, "sub-wave kernels still stop on stability");
        assert!(r.blocks_completed < r.wave_blocks);
        let projected = ProjectedKernel::from_result(&r);
        let full = sim.run_kernel(&k).unwrap();
        let err = (projected.cycles as f64 - full.cycles as f64).abs() / full.cycles as f64;
        assert!(err < 0.35, "projection error {err}");
    }

    #[test]
    fn stricter_threshold_simulates_longer() {
        let sim = tiny();
        let k = stable_kernel(512);
        let mut loose = PkpMonitor::new(PkpConfig::default().with_threshold(2.5), 200);
        let mut strict = PkpMonitor::new(PkpConfig::default().with_threshold(0.025), 200);
        let a = sim.run_kernel_monitored(&k, &mut loose).unwrap();
        let b = sim.run_kernel_monitored(&k, &mut strict).unwrap();
        assert!(a.cycles <= b.cycles, "loose {} strict {}", a.cycles, b.cycles);
    }

    #[test]
    fn irregular_kernel_eventually_stabilises() {
        // Multi-phase kernel (the BFS shape of Figure 5b): PKP must wait
        // out the early phases, then still stop.
        let sim = tiny();
        let k = KernelDescriptor::builder("irregular")
            .grid_blocks(256)
            .block_threads(128)
            .int_per_thread(300)
            .global_loads_per_thread(60)
            .coalescing_sectors(12.0)
            .divergence_efficiency(0.5)
            .phases(vec![
                KernelPhase { fraction: 0.2, mem_scale: 2.0, compute_scale: 0.5 },
                KernelPhase { fraction: 0.8, mem_scale: 0.8, compute_scale: 1.1 },
            ])
            .build()
            .unwrap();
        let full = sim.run_kernel(&k).unwrap();
        let mut m = PkpMonitor::new(PkpConfig::default(), 200);
        let r = sim.run_kernel_monitored(&k, &mut m).unwrap();
        if r.early_stop {
            let projected = ProjectedKernel::from_result(&r);
            let err =
                (projected.cycles as f64 - full.cycles as f64).abs() / full.cycles as f64;
            assert!(err < 0.6, "irregular projection error {err}");
        }
    }

    #[test]
    fn completed_kernel_projects_to_itself() {
        let sim = tiny();
        let k = stable_kernel(16);
        let full = sim.run_kernel(&k).unwrap();
        let p = ProjectedKernel::from_result(&full);
        assert!(!p.projected);
        assert_eq!(p.cycles, full.cycles);
        assert_eq!(p.speedup(), 1.0);
    }

    #[test]
    fn paper_defaults_are_pinned() {
        // Section 3.2's published operating point: s = 0.25 over the last
        // 3000 cycles, wave constraint on. Changing these silently would
        // invalidate every reproduced table.
        let config = PkpConfig::default();
        assert_eq!(config.threshold(), 0.25);
        assert_eq!(config.window_cycles(), 3000);
        assert!(config.wave_constraint());
    }
}

#[cfg(test)]
mod stopping_rule_properties {
    use super::*;
    use pka_sim::IpcSample;
    use proptest::prelude::*;

    /// Drives a monitor with a synthetic IPC stream and the given block
    /// geometry (blocks retire linearly over the stream) and returns the
    /// sample index at which it stopped, with the completion state there.
    fn drive(
        monitor: &mut PkpMonitor,
        ipc: &[f64],
        blocks_total: u64,
        wave_blocks: u64,
        sample_interval: u64,
    ) -> Option<(usize, u64)> {
        let n = ipc.len() as u64;
        for (i, &sample_ipc) in ipc.iter().enumerate() {
            let blocks_completed = blocks_total * (i as u64 + 1) / n;
            let ctx = SampleContext {
                sample: IpcSample {
                    cycle: (i as u64 + 1) * sample_interval,
                    ipc: sample_ipc,
                    l2_miss_pct: 10.0,
                    dram_util_pct: 20.0,
                },
                instructions: (i as u64 + 1) * 1000,
                blocks_completed,
                blocks_total,
                wave_blocks,
            };
            if monitor.observe(&ctx) == SimControl::Stop {
                return Some((i, blocks_completed));
            }
        }
        None
    }

    /// A synthetic projectable result; only the completion state and cycle
    /// counts matter for the cycle projection.
    fn result_with_blocks(
        cycles: u64,
        overhead: u64,
        completed: u64,
        total: u64,
        wave: u64,
    ) -> KernelSimResult {
        KernelSimResult {
            cycles,
            instructions: 4 * cycles,
            instructions_total: 4 * cycles * total.max(1) / completed.max(1),
            launch_overhead_cycles: overhead,
            warp_ipc: 4.0,
            ipc_series: Vec::new(),
            dram_util_pct: 30.0,
            l2_miss_rate_pct: 15.0,
            l1_miss_rate_pct: 25.0,
            blocks_completed: completed,
            blocks_total: total,
            wave_blocks: wave,
            early_stop: completed < total,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The full-wave constraint (Section 3.2): a grid of at least one
        /// wave never stops before `wave_blocks` thread blocks have
        /// retired, no matter how flat the IPC stream is.
        #[test]
        fn never_stops_before_one_full_wave(
            base in 0.5f64..4.0,
            noise in 0.0f64..0.05,
            wave_blocks in 1u64..32,
            waves in 1u64..6,
            len in 20usize..80,
            seed in any::<u64>(),
        ) {
            let blocks_total = wave_blocks * waves; // >= one wave
            let ipc: Vec<f64> = (0..len)
                .map(|i| {
                    let wobble = (seed.wrapping_mul(i as u64 + 1) % 1000) as f64 / 1000.0;
                    base * (1.0 + noise * (wobble - 0.5))
                })
                .collect();
            let mut monitor = PkpMonitor::new(PkpConfig::default(), 200);
            if let Some((_, completed_at_stop)) =
                drive(&mut monitor, &ipc, blocks_total, wave_blocks, 200)
            {
                prop_assert!(
                    completed_at_stop >= wave_blocks,
                    "stopped with {completed_at_stop} of {wave_blocks} wave blocks retired"
                );
                prop_assert!(monitor.stopped_at().is_some());
            }
        }

        /// The sub-wave carve-out: grids smaller than one wave may stop on
        /// stability alone, and a flat stream makes them do so.
        #[test]
        fn sub_wave_grids_stop_without_a_retired_wave(
            base in 0.5f64..4.0,
            wave_blocks in 8u64..64,
        ) {
            let blocks_total = wave_blocks - 1; // strictly sub-wave
            let ipc = vec![base; 40]; // perfectly flat -> rel std dev 0
            let mut monitor = PkpMonitor::new(PkpConfig::default(), 200);
            let stop = drive(&mut monitor, &ipc, blocks_total, wave_blocks, 200);
            prop_assert!(stop.is_some(), "flat sub-wave stream must stop");
            let (i, completed) = stop.unwrap();
            // It stopped as soon as the window filled, before any full wave
            // could possibly retire.
            prop_assert!(completed < wave_blocks);
            prop_assert_eq!(i + 1, monitor.window.window());
        }

        /// Disabling the wave constraint can only make the stop earlier.
        #[test]
        fn wave_constraint_never_hastens_the_stop(
            base in 0.5f64..4.0,
            wave_blocks in 2u64..32,
            waves in 1u64..5,
        ) {
            let blocks_total = wave_blocks * waves;
            let ipc = vec![base; 60];
            let mut with_wave = PkpMonitor::new(PkpConfig::default(), 200);
            let mut without = PkpMonitor::new(
                PkpConfig::default().with_wave_constraint(false),
                200,
            );
            let a = drive(&mut with_wave, &ipc, blocks_total, wave_blocks, 200);
            let b = drive(&mut without, &ipc, blocks_total, wave_blocks, 200);
            prop_assert!(b.is_some(), "unconstrained flat stream must stop");
            if let (Some((ia, _)), Some((ib, _))) = (a, b) {
                prop_assert!(ib <= ia, "unconstrained stopped later: {ib} > {ia}");
            }
        }

        /// A stream whose level keeps moving never stops. (A *fast*
        /// alternation is not such a stream — the monitor's EMA smoothing
        /// legitimately flattens it — so the adversary here is a steep
        /// geometric ramp, which no smoothing can make look stationary.)
        #[test]
        fn unstable_streams_never_stop(
            base in 0.01f64..1.0,
            growth in 1.4f64..1.8,
            wave_blocks in 1u64..16,
            len in 20usize..100,
        ) {
            let ipc: Vec<f64> = (0..len)
                .map(|i| base * growth.powi(i as i32))
                .collect();
            let mut monitor = PkpMonitor::new(PkpConfig::default(), 200);
            let stop = drive(&mut monitor, &ipc, wave_blocks * 4, wave_blocks, 200);
            prop_assert!(stop.is_none(), "alternating stream stopped at {stop:?}");
            prop_assert!(monitor.stopped_at().is_none());
        }

        /// Linear projection is monotone in the number of unfinished
        /// blocks: with the same simulated prefix, a grid with more blocks
        /// left must project at least as many total cycles.
        #[test]
        fn projected_cycles_monotone_in_unfinished_blocks(
            cycles in 1_000u64..1_000_000,
            overhead_pct in 0u64..50,
            completed in 1u64..200,
            extra_small in 0u64..500,
            extra_more in 1u64..500,
            wave in 1u64..64,
        ) {
            let overhead = cycles * overhead_pct / 100;
            let small = result_with_blocks(
                cycles, overhead, completed, completed + extra_small, wave);
            let large = result_with_blocks(
                cycles, overhead, completed, completed + extra_small + extra_more, wave);
            let p_small = small.projected_total_cycles();
            let p_large = large.projected_total_cycles();
            prop_assert!(
                p_large >= p_small,
                "more unfinished blocks projected fewer cycles: {p_large} < {p_small}"
            );
            // Projection never goes below what was actually simulated.
            prop_assert!(p_small >= cycles);
        }

        /// A finished kernel projects to exactly its simulated cycles.
        #[test]
        fn finished_kernels_project_identity(
            cycles in 1_000u64..1_000_000,
            blocks in 1u64..500,
            wave in 1u64..64,
        ) {
            let done = result_with_blocks(cycles, 0, blocks, blocks, wave);
            prop_assert_eq!(done.projected_total_cycles(), cycles);
            let p = ProjectedKernel::from_result(&done);
            prop_assert_eq!(p.cycles, cycles);
            prop_assert!(!p.projected);
        }
    }
}
