//! Principal Kernel Analysis — the paper's contribution.
//!
//! PKA makes simulation of scaled GPU workloads tractable with two
//! complementary reductions plus an automated pipeline:
//!
//! * **Principal Kernel Selection** ([`Pks`]) — inter-kernel reduction.
//!   Standardise the 12 Table 2 metrics from detailed silicon profiling,
//!   project with PCA, sweep K-Means over K = 1..20, and keep the smallest
//!   K whose projected total-cycle error against silicon is below the
//!   target (5% throughout the paper). One representative kernel per group
//!   — by default the first chronological one — stands in for the whole
//!   group, its cycles scaled by the group population.
//! * **Two-level profiling** ([`TwoLevel`]) — when detailed profiling would
//!   take more than a week, profile only the first *j* kernels in detail,
//!   cluster those, then map the remaining lightweight records (name +
//!   launch geometry + PyProf annotations) onto the groups with an
//!   SGD/naive-Bayes/MLP classifier ensemble.
//! * **Principal Kernel Projection** ([`PkpMonitor`]) — intra-kernel
//!   reduction. Watch the rolling standard deviation of instantaneous IPC
//!   over the last 3000 cycles during simulation; once it drops below the
//!   confidence threshold `s` (0.25 everywhere in the paper) *and* a full
//!   wave of thread blocks has retired (waived for sub-wave grids), stop
//!   and linearly project the remaining cycles and metrics.
//! * **The PKA pipeline** ([`Pka`]) — profiling → selection → monitored
//!   simulation → application-level projection, producing the error /
//!   speedup / simulation-time numbers of Table 4.
//!
//! # Examples
//!
//! ```
//! use pka_core::{Pka, PkaConfig};
//! use pka_gpu::GpuConfig;
//! use pka_workloads::rodinia;
//!
//! let gaussian = rodinia::workloads()
//!     .into_iter()
//!     .find(|w| w.name() == "gauss_208")
//!     .expect("exists");
//! let pka = Pka::new(GpuConfig::v100(), PkaConfig::default());
//! let selection = pka.select_kernels(&gaussian)?;
//! // 414 launches fold into a single principal kernel.
//! assert!(selection.k() <= 2);
//! # Ok::<(), pka_core::PkaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod error;
mod features;
mod pipeline;
mod pkp;
mod pks;
mod two_level;

pub use attribution::{
    selection_attribution, simulation_attribution, ErrorAttribution, GroupAttribution,
    GroupProvenance, RepSimulation, ShardAttribution, ATTRIBUTION_SCHEMA,
};
pub use error::PkaError;
pub use pka_stats::Executor;
pub use features::feature_matrix;
pub use pipeline::{Pka, PkaConfig, RepProjection, SiliconPksReport, SimulationReport};
pub use pkp::{PkpConfig, PkpMonitor, ProjectedKernel};
pub use pks::{KernelGroup, Pks, PksConfig, RepresentativePolicy, Selection};
pub use two_level::{TwoLevel, TwoLevelConfig};
