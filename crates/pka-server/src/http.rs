//! A minimal HTTP/1.1 implementation on `std::net` — exactly the subset
//! the PKA service needs (request-line + headers + `Content-Length`
//! bodies, keep-alive, no chunked transfer coding), so the server stays
//! zero-external-dependency like the rest of the workspace.

use std::io::{BufRead, Write};

use serde_json::Value;

/// Largest accepted header block (request line + headers), in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Raw query string (without the `?`), empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns a [`ReadError::Malformed`] description for invalid UTF-8.
    pub fn body_text(&self) -> Result<&str, ReadError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ReadError::Malformed("request body is not UTF-8".into()))
    }
}

/// Why a request could not be read off the wire.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before a request line arrived — the
    /// normal end of a keep-alive connection, not an error to report.
    Closed,
    /// Transport failure mid-request.
    Io(std::io::Error),
    /// The bytes were not a well-formed HTTP/1.1 request (maps to `400`).
    Malformed(String),
    /// The declared body exceeds the configured cap (maps to `413`).
    TooLarge,
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from `stream`. Bodies larger than `max_body` are
/// rejected without being read.
///
/// # Errors
///
/// [`ReadError::Closed`] at clean EOF before any byte, otherwise the
/// transport/parse failure.
pub fn read_request<R: BufRead>(stream: &mut R, max_body: usize) -> Result<Request, ReadError> {
    let mut line = String::new();
    if stream.read_line(&mut line)? == 0 {
        return Err(ReadError::Closed);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line lacks a target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line lacks a version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported version `{version}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut h = String::new();
        if stream.read_line(&mut h)? == 0 {
            return Err(ReadError::Malformed("connection closed mid-headers".into()));
        }
        head_bytes += h.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("header block too large".into()));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        let (name, value) = h
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("header without colon: `{h}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::Malformed("invalid Content-Length".into()))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(stream, &mut body)?;
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// One response, ready to serialise.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response (compact rendering plus trailing newline, so shell
    /// pipelines read one value per line).
    pub fn json(status: u16, value: &Value) -> Self {
        let mut body = value.to_string().into_bytes();
        body.push(b'\n');
        Self {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A raw pre-rendered body (NDJSON streams, artifact bytes).
    pub fn raw(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type,
            body: body.into(),
        }
    }

    /// A JSON error envelope `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(status, &serde_json::json!({ "error": message }))
    }

    /// Serialises status line, headers and body to `w`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        408 => "Request Timeout",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_request_with_body_and_query() {
        let raw = b"POST /v1/sessions?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let mut r = BufReader::new(&raw[..]);
        let req = read_request(&mut r, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sessions");
        assert_eq!(req.query, "verbose=1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn clean_eof_is_closed_and_oversize_body_is_too_large() {
        let mut empty = BufReader::new(&b""[..]);
        assert!(matches!(read_request(&mut empty, 10), Err(ReadError::Closed)));

        let raw = b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        assert!(matches!(read_request(&mut r, 10), Err(ReadError::TooLarge)));
    }

    #[test]
    fn garbage_is_malformed() {
        let raw = b"NOT-HTTP\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        assert!(matches!(
            read_request(&mut r, 10),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn response_serialises_with_length_and_connection() {
        let mut out = Vec::new();
        Response::json(200, &serde_json::json!({ "ok": true }))
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive"), "{text}");
        assert!(text.ends_with("{\"ok\":true}\n"), "{text}");
    }
}
