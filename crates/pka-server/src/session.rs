//! Session objects: one long-lived analysis per `POST /v1/sessions`.
//!
//! A session owns a worker thread driving a `pka-stream` pipeline (or a
//! batch `pka-core` evaluation), a [`CancelToken`] polled at every tail
//! batch boundary, an optional [`FeedHandle`] for record-by-record HTTP
//! ingestion, and a bounded in-memory progress ring of `pka.snapshot/v1`
//! lines. The registry enforces the service's memory budget: at most
//! `max_active` concurrently running sessions (each `O(K·d + reservoir +
//! batch)` by the streaming contract), and completed sessions are retained
//! for inspection up to `retain_completed`, then LRU-evicted by completion
//! order.
//!
//! Teardown (`DELETE`) is cancellation-safe by construction: the cancel
//! flag fires, the feed (if any) is abandoned so a blocked refill drains
//! and observes end-of-stream, the pipeline emits one teardown checkpoint
//! at the exact batch boundary it reached, and only then is the worker
//! joined — no state is dropped while a pipeline thread can still touch
//! it, and the checkpoint on disk stays resumable.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use pka_core::{Executor, Pka, PkaConfig, PkpConfig, PksConfig, Selection};
use pka_gpu::GpuConfig;
use pka_obs::SnapshotRecord;
use pka_profile::Profiler;
use pka_stream::{
    synthetic_workload, CancelToken, Checkpoint, FeedHandle, FeedSource, KernelSource,
    ShardedCheckpoint, ShardedStreamPks, StreamConfig, StreamError, StreamPks, WorkloadSource,
};
use pka_workloads::{all_workloads, Workload};
use serde_json::{json, Map, Value};

/// Progress lines retained per session; older lines are dropped (counted
/// in the ring's `dropped` field) so a million-kernel session cannot grow
/// its progress memory without bound.
pub const PROGRESS_CAP: usize = 512;

/// Histogram edges for the session worker spawn cost (ns). Spawning an OS
/// thread is the per-session cost the shared [`Executor`] design avoids
/// paying more than once per session: the executor itself is a `Copy`
/// value shared by every session, and its `rounds` pool is spawned once
/// per pipeline run, not per batch.
const SPAWN_EDGES: &[u64] = &[
    10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
];

/// Session lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Created; worker not yet past bootstrap.
    Pending,
    /// Worker is consuming records.
    Running,
    /// Finished cleanly; result and final artifacts are available.
    Done,
    /// Pipeline error; `error` holds the message.
    Failed,
    /// Torn down through the cancel token; the last checkpoint is the
    /// resumable teardown snapshot.
    Cancelled,
}

impl Status {
    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(self, Status::Done | Status::Failed | Status::Cancelled)
    }

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Pending => "pending",
            Status::Running => "running",
            Status::Done => "done",
            Status::Failed => "failed",
            Status::Cancelled => "cancelled",
        }
    }
}

/// Everything a session accumulates, behind one mutex.
#[derive(Debug, Default)]
pub struct SessionState {
    status_tag: u8,
    /// Failure message when status is `Failed`.
    pub error: Option<String>,
    /// Records consumed at the last observed checkpoint (exact at end).
    pub records: u64,
    /// Selected K once the prefix bootstrap completes.
    pub selected_k: Option<usize>,
    /// Result document (Table-3/4-shaped for batch, report + parity fields
    /// for streams), present once `Done`.
    pub result: Option<Value>,
    /// Exact bytes of the final checkpoint (matches `write_to` output).
    pub final_checkpoint: Option<String>,
    /// Exact bytes of the latest periodic/teardown checkpoint.
    pub last_checkpoint: Option<String>,
    /// Exact bytes of the `pka.attribution/v1` artifact (pretty + `\n`,
    /// matching the CLI's `--attribution-out` file).
    pub attribution: Option<String>,
    /// Stamped `pka.snapshot/v1` lines (bounded ring).
    pub progress: VecDeque<String>,
    /// Progress lines evicted from the ring.
    pub progress_dropped: u64,
    /// Monotonic completion stamp (LRU eviction order).
    pub done_stamp: u64,
}

impl SessionState {
    /// Current status.
    pub fn status(&self) -> Status {
        match self.status_tag {
            0 => Status::Pending,
            1 => Status::Running,
            2 => Status::Done,
            3 => Status::Failed,
            _ => Status::Cancelled,
        }
    }

    fn set_status(&mut self, s: Status) {
        self.status_tag = match s {
            Status::Pending => 0,
            Status::Running => 1,
            Status::Done => 2,
            Status::Failed => 3,
            Status::Cancelled => 4,
        };
    }
}

/// The part of a session shared with its worker thread. Workers hold
/// `Arc<SessionCell>` (never the [`Session`] itself), so a session's own
/// join handle can never keep the session alive through a reference cycle.
pub struct SessionCell {
    /// Session id (`s1`, `s2`, ... in creation order).
    pub id: String,
    /// Cooperative cancel flag, polled at tail batch boundaries.
    pub cancel: CancelToken,
    /// Mutable session state.
    pub state: Mutex<SessionState>,
    /// Paired with `state`: notified whenever a new progress line lands in
    /// the ring or the session reaches a terminal status, so SSE
    /// subscribers (`GET .../events`) wake without polling.
    pub progress_wake: Condvar,
}

/// One registered session.
pub struct Session {
    /// Shared state cell.
    pub cell: Arc<SessionCell>,
    /// Spec echo: mode wire name.
    pub mode: &'static str,
    /// Spec echo: source label.
    pub source: String,
    /// Producer handle for feed-backed sessions.
    pub feed: Option<FeedHandle>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Session {
    /// Joins the worker thread (idempotent). Callers must cancel/abandon
    /// first if the worker may still be consuming.
    pub fn join(&self) {
        let handle = self.worker.lock().expect("worker lock").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Status summary document.
    pub fn describe(&self) -> Value {
        let st = self.cell.state.lock().expect("session state");
        let mut m = Map::new();
        m.insert("id".into(), Value::from(self.cell.id.clone()));
        m.insert("mode".into(), Value::from(self.mode));
        m.insert("source".into(), Value::from(self.source.clone()));
        m.insert("status".into(), Value::from(st.status().as_str()));
        m.insert("records".into(), Value::from(st.records));
        if let Some(k) = st.selected_k {
            m.insert("selected_k".into(), Value::from(k as u64));
        }
        if let Some(e) = &st.error {
            m.insert("error".into(), Value::from(e.clone()));
        }
        m.insert(
            "progress_lines".into(),
            Value::from(st.progress.len() as u64),
        );
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

/// Streaming-source choice, resolved at session creation so a bad spec
/// fails the `POST` synchronously instead of inside the worker.
enum StreamSource {
    Synthetic(u64),
    Workload(Workload),
    Feed(FeedSource),
}

/// Explicit config overrides from the spec (absent fields keep the
/// default — or, on resume, the checkpoint's embedded config echo).
#[derive(Default, Clone, Copy)]
struct ConfigOverrides {
    prefix: Option<u64>,
    checkpoint_every: Option<u64>,
    reservoir: Option<u64>,
    batch: Option<u64>,
}

impl ConfigOverrides {
    fn apply(self, mut config: StreamConfig) -> StreamConfig {
        if let Some(j) = self.prefix {
            config = config.with_prefix(j);
        }
        if let Some(n) = self.checkpoint_every {
            config = config.with_checkpoint_every(n);
        }
        if let Some(n) = self.reservoir {
            config = config.with_reservoir(n as usize);
        }
        if let Some(n) = self.batch {
            config = config.with_batch(n as usize);
        }
        config
    }
}

/// A fully validated session plan.
enum Plan {
    Stream {
        source: StreamSource,
        gpu: GpuConfig,
        overrides: ConfigOverrides,
        shards: Option<usize>,
        checkpoint_path: Option<PathBuf>,
        resume: bool,
    },
    Select {
        workload: Workload,
        target_error: f64,
    },
    Simulate {
        workload: Workload,
        gpu: GpuConfig,
        threshold: f64,
        full: bool,
    },
}

fn spec_str<'a>(spec: &'a Value, key: &str) -> Result<Option<&'a str>, String> {
    match spec.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Ok(Some(s)),
        Some(_) => Err(format!("`{key}` must be a string")),
    }
}

fn spec_u64(spec: &Value, key: &str) -> Result<Option<u64>, String> {
    match spec.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn spec_f64(spec: &Value, key: &str) -> Result<Option<f64>, String> {
    match spec.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a number")),
    }
}

fn spec_bool(spec: &Value, key: &str) -> Result<bool, String> {
    match spec.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("`{key}` must be a boolean")),
    }
}

fn gpu_by_name(name: &str) -> Result<GpuConfig, String> {
    match name {
        "v100" => Ok(GpuConfig::v100()),
        "rtx2060" => Ok(GpuConfig::rtx2060()),
        "rtx3070" => Ok(GpuConfig::rtx3070()),
        "v100-half" => Ok(GpuConfig::v100_half_sms()),
        other => Err(format!("unknown gpu `{other}`")),
    }
}

fn workload_by_name(name: &str) -> Result<Workload, String> {
    all_workloads()
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| format!("unknown workload `{name}`"))
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Shared counters the registry and every worker update. Workers hold
/// `Arc<RegistryStats>`, not the registry, so shutdown order is trivial.
struct RegistryStats {
    active: AtomicI64,
    done_stamp: AtomicU64,
}

impl RegistryStats {
    fn set_gauge(&self) {
        pka_obs::gauge("server.sessions.active").set(self.active.load(Ordering::Relaxed));
    }

    fn session_started(&self) {
        self.active.fetch_add(1, Ordering::Relaxed);
        self.set_gauge();
    }

    fn session_finished(&self) -> u64 {
        self.active.fetch_sub(1, Ordering::Relaxed);
        self.set_gauge();
        self.done_stamp.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// The session registry: id allocation, capacity caps, LRU retention of
/// completed sessions, and whole-service teardown.
pub struct Registry {
    inner: Mutex<RegistryInner>,
    stats: Arc<RegistryStats>,
    max_active: usize,
    retain_completed: usize,
    feed_capacity: usize,
    exec: Executor,
}

struct RegistryInner {
    sessions: BTreeMap<String, Arc<Session>>,
    next_id: u64,
}

impl Registry {
    /// Creates the registry. `exec` is the process-wide executor every
    /// session's pipeline fans out over — [`Executor`] is a tiny `Copy`
    /// value (thread pools are spawned per pipeline run, inside the run),
    /// so sharing it costs nothing and keeps worker-count policy in one
    /// place.
    pub fn new(
        max_active: usize,
        retain_completed: usize,
        feed_capacity: usize,
        exec: Executor,
    ) -> Self {
        Self {
            inner: Mutex::new(RegistryInner {
                sessions: BTreeMap::new(),
                next_id: 0,
            }),
            stats: Arc::new(RegistryStats {
                active: AtomicI64::new(0),
                done_stamp: AtomicU64::new(0),
            }),
            max_active: max_active.max(1),
            retain_completed,
            feed_capacity: feed_capacity.max(1),
            exec,
        }
    }

    /// Looks a session up by id.
    pub fn get(&self, id: &str) -> Option<Arc<Session>> {
        self.inner
            .lock()
            .expect("registry lock")
            .sessions
            .get(id)
            .cloned()
    }

    /// Status summaries of every registered session, in id order.
    pub fn list(&self) -> Vec<Value> {
        self.inner
            .lock()
            .expect("registry lock")
            .sessions
            .values()
            .map(|s| s.describe())
            .collect()
    }

    /// Creates a session from a JSON spec and starts its worker.
    ///
    /// # Errors
    ///
    /// `(400, message)` for an invalid spec, `(429, message)` when
    /// `max_active` sessions are already running.
    pub fn create(&self, spec: &Value) -> Result<Arc<Session>, (u16, String)> {
        let bad = |m: String| (400u16, m);

        let mode = spec_str(spec, "mode").map_err(bad)?.unwrap_or("stream");
        let (plan, mode_name, source_label, feed_handle) = match mode {
            "stream" => self.parse_stream_spec(spec).map_err(bad)?,
            "select" => {
                let workload = workload_by_name(
                    spec_str(spec, "workload")
                        .map_err(bad)?
                        .ok_or_else(|| bad("`workload` is required for mode `select`".into()))?,
                )
                .map_err(bad)?;
                let target_error = spec_f64(spec, "target_error").map_err(bad)?.unwrap_or(5.0);
                let label = workload.name().to_string();
                (
                    Plan::Select {
                        workload,
                        target_error,
                    },
                    "select",
                    label,
                    None,
                )
            }
            "simulate" => {
                let workload = workload_by_name(
                    spec_str(spec, "workload")
                        .map_err(bad)?
                        .ok_or_else(|| bad("`workload` is required for mode `simulate`".into()))?,
                )
                .map_err(bad)?;
                let gpu =
                    gpu_by_name(spec_str(spec, "gpu").map_err(bad)?.unwrap_or("v100")).map_err(bad)?;
                let threshold = spec_f64(spec, "threshold").map_err(bad)?.unwrap_or(0.25);
                let full = spec_bool(spec, "full").map_err(bad)?;
                let label = workload.name().to_string();
                (
                    Plan::Simulate {
                        workload,
                        gpu,
                        threshold,
                        full,
                    },
                    "simulate",
                    label,
                    None,
                )
            }
            other => return Err(bad(format!("unknown mode `{other}`"))),
        };

        let mut inner = self.inner.lock().expect("registry lock");
        let running = inner
            .sessions
            .values()
            .filter(|s| !s.cell.state.lock().expect("session state").status().is_terminal())
            .count();
        if running >= self.max_active {
            return Err((
                429,
                format!(
                    "{running} sessions already active (cap {}); delete one or wait",
                    self.max_active
                ),
            ));
        }
        inner.next_id += 1;
        let id = format!("s{}", inner.next_id);

        let cell = Arc::new(SessionCell {
            id: id.clone(),
            cancel: CancelToken::new(),
            state: Mutex::new(SessionState::default()),
            progress_wake: Condvar::new(),
        });
        self.stats.session_started();
        if pka_obs::enabled() {
            pka_obs::counter("server.sessions.created").incr();
        }

        let worker_cell = Arc::clone(&cell);
        let worker_stats = Arc::clone(&self.stats);
        let exec = self.exec;
        let spawn_t0 = Instant::now();
        let handle = std::thread::Builder::new()
            .name(format!("pka-session-{id}"))
            .spawn(move || {
                pka_obs::histogram("server.session_spawn_ns", SPAWN_EDGES)
                    .record(u64::try_from(spawn_t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                run_session(worker_cell, worker_stats, plan, exec);
            })
            .map_err(|e| (500, format!("spawn session worker: {e}")))?;

        let session = Arc::new(Session {
            cell,
            mode: mode_name,
            source: source_label,
            feed: feed_handle,
            worker: Mutex::new(Some(handle)),
        });
        inner.sessions.insert(id, Arc::clone(&session));
        self.evict_locked(&mut inner);
        Ok(session)
    }

    fn parse_stream_spec(
        &self,
        spec: &Value,
    ) -> Result<(Plan, &'static str, String, Option<FeedHandle>), String> {
        let source_spec = spec_str(spec, "source")?.ok_or_else(|| {
            "`source` is required for mode `stream` (synthetic:N, a workload name, or `feed`)"
                .to_string()
        })?;
        let gpu = gpu_by_name(spec_str(spec, "gpu")?.unwrap_or("v100"))?;
        let overrides = ConfigOverrides {
            prefix: spec_u64(spec, "prefix")?,
            checkpoint_every: spec_u64(spec, "checkpoint_every")?,
            reservoir: spec_u64(spec, "reservoir")?,
            batch: spec_u64(spec, "batch")?,
        };
        let shards = spec_u64(spec, "shards")?.map(|n| n as usize);
        let checkpoint_path = spec_str(spec, "checkpoint_path")?.map(PathBuf::from);
        let resume = spec_bool(spec, "resume")?;
        if resume && checkpoint_path.is_none() {
            return Err("`resume` requires `checkpoint_path`".to_string());
        }

        let mut feed_handle = None;
        let (source, label) = if let Some(n) = source_spec.strip_prefix("synthetic:") {
            let n: u64 = n
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or("synthetic:N needs a positive integer N")?;
            (
                StreamSource::Synthetic(n),
                format!("workload:synthetic{n}"),
            )
        } else if source_spec == "feed" {
            let label = spec_str(spec, "source_name")?
                .map(str::to_string)
                .unwrap_or_else(|| "feed:http".to_string());
            let (feed, handle) = FeedSource::new(label.clone(), self.feed_capacity);
            feed_handle = Some(handle);
            (StreamSource::Feed(feed), label)
        } else {
            let w = workload_by_name(source_spec)?;
            let label = format!("workload:{}", w.name());
            (StreamSource::Workload(w), label)
        };

        Ok((
            Plan::Stream {
                source,
                gpu,
                overrides,
                shards,
                checkpoint_path,
                resume,
            },
            "stream",
            label,
            feed_handle,
        ))
    }

    /// Tears one session down: cancel, abandon its feed, join its worker.
    /// The session stays registered (terminal) so its teardown checkpoint
    /// and status remain fetchable until retention evicts it.
    ///
    /// Returns the session's status summary, or `None` for an unknown id.
    pub fn teardown(&self, id: &str) -> Option<Value> {
        let session = self.get(id)?;
        session.cell.cancel.cancel();
        if let Some(feed) = &session.feed {
            feed.abandon();
        }
        session.join();
        if pka_obs::enabled() {
            pka_obs::counter("server.sessions.torn_down").incr();
        }
        let mut inner = self.inner.lock().expect("registry lock");
        self.evict_locked(&mut inner);
        drop(inner);
        Some(session.describe())
    }

    /// Cancels every session and joins every worker (service shutdown).
    pub fn shutdown(&self) {
        let sessions: Vec<Arc<Session>> = self
            .inner
            .lock()
            .expect("registry lock")
            .sessions
            .values()
            .cloned()
            .collect();
        for s in &sessions {
            s.cell.cancel.cancel();
            if let Some(feed) = &s.feed {
                feed.abandon();
            }
        }
        for s in &sessions {
            s.join();
        }
    }

    /// Evicts the oldest-completed sessions beyond `retain_completed`.
    fn evict_locked(&self, inner: &mut RegistryInner) {
        let mut terminal: Vec<(u64, String)> = inner
            .sessions
            .iter()
            .filter_map(|(id, s)| {
                let st = s.cell.state.lock().expect("session state");
                st.status().is_terminal().then(|| (st.done_stamp, id.clone()))
            })
            .collect();
        if terminal.len() <= self.retain_completed {
            return;
        }
        terminal.sort();
        let excess = terminal.len() - self.retain_completed;
        for (_, id) in terminal.into_iter().take(excess) {
            if let Some(s) = inner.sessions.remove(&id) {
                s.join(); // terminal => already exited; reap the handle
                if pka_obs::enabled() {
                    pka_obs::counter("server.sessions.evicted").incr();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn run_session(cell: Arc<SessionCell>, stats: Arc<RegistryStats>, plan: Plan, exec: Executor) {
    {
        let mut st = cell.state.lock().expect("session state");
        st.set_status(Status::Running);
    }
    let outcome: Result<Value, (Status, Option<String>)> = match plan {
        Plan::Stream {
            source,
            gpu,
            overrides,
            shards,
            checkpoint_path,
            resume,
        } => run_stream(&cell, source, gpu, overrides, shards, checkpoint_path, resume, exec),
        Plan::Select {
            workload,
            target_error,
        } => run_select(&cell, workload, target_error, exec),
        Plan::Simulate {
            workload,
            gpu,
            threshold,
            full,
        } => run_simulate(&cell, workload, gpu, threshold, full, exec),
    };
    let stamp = stats.session_finished();
    let mut st = cell.state.lock().expect("session state");
    st.done_stamp = stamp;
    match outcome {
        Ok(result) => {
            st.result = Some(result);
            st.set_status(Status::Done);
        }
        Err((status, error)) => {
            st.error = error;
            st.set_status(status);
        }
    }
    drop(st);
    // Terminal transition: wake every events subscriber so streams end
    // promptly after DELETE/finish instead of waiting out a poll tick.
    cell.progress_wake.notify_all();
}

/// Maps a pipeline error to the session's terminal state: cancellation is
/// a first-class outcome, everything else is a failure.
fn terminal_of(e: StreamError) -> (Status, Option<String>) {
    match e {
        StreamError::Cancelled => (Status::Cancelled, None),
        other => (Status::Failed, Some(other.to_string())),
    }
}

fn push_progress(st: &mut SessionState, line: String) {
    if st.progress.len() == PROGRESS_CAP {
        st.progress.pop_front();
        st.progress_dropped += 1;
    }
    st.progress.push_back(line);
}

/// Stamps a [`SnapshotRecord`] payload exactly like the `pka-obs` snapshot
/// sink does (`type`/`seq`/`timing`), except `timing` is empty: progress
/// served over HTTP is built purely from checkpoint state, so interleaved
/// sessions produce byte-identical progress to serial runs.
fn stamp_line(record: &SnapshotRecord, seq: u64) -> String {
    let mut v = record.to_value();
    if let Value::Object(m) = &mut v {
        m.insert("type".into(), Value::from("snapshot"));
        m.insert("seq".into(), Value::from(seq));
        m.insert("timing".into(), json!({}));
    }
    v.to_string()
}

fn group_counts_of(selection: &Value) -> Vec<u64> {
    serde_json::from_value::<Selection>(selection.clone())
        .map(|s| s.groups().iter().map(|g| g.count()).collect())
        .unwrap_or_default()
}

fn single_record(cp: &Checkpoint) -> SnapshotRecord {
    SnapshotRecord {
        phase: "tail".to_string(),
        records: cp.records,
        selected_k: cp.selected_k as i64,
        group_counts: group_counts_of(&cp.selection),
        reservoir_len: cp.reservoir.items.len() as u64,
        reservoir_cap: cp.reservoir.cap as u64,
        drifts: cp.drifts,
        reclusters: cp.reclusters,
        checkpoints: cp.seq,
        max_buffered: cp.max_buffered,
        shards: Vec::new(),
    }
}

fn sharded_record(cp: &ShardedCheckpoint) -> SnapshotRecord {
    SnapshotRecord {
        phase: "tail".to_string(),
        records: cp.records,
        selected_k: cp.selected_k as i64,
        group_counts: group_counts_of(&cp.selection),
        reservoir_len: cp
            .shard_sections
            .iter()
            .map(|s| s.reservoir.items.len() as u64)
            .sum(),
        reservoir_cap: cp.shard_sections.iter().map(|s| s.reservoir.cap as u64).sum(),
        drifts: cp.shard_sections.iter().map(|s| s.drifts).sum(),
        reclusters: cp.shard_sections.iter().map(|s| s.reclusters).sum(),
        checkpoints: cp.seq,
        max_buffered: cp.max_buffered,
        shards: cp.shard_sections.iter().map(|s| s.records).collect(),
    }
}

/// Renders the attribution artifact exactly like the CLI's
/// `--attribution-out` file (pretty JSON + trailing newline), so `cmp`
/// against a CLI run passes bytewise.
fn attribution_bytes(
    attribution: &pka_core::ErrorAttribution,
) -> Result<String, (Status, Option<String>)> {
    let mut text = serde_json::to_string_pretty(attribution)
        .map_err(|e| (Status::Failed, Some(format!("serialise attribution: {e}"))))?;
    text.push('\n');
    Ok(text)
}

#[allow(clippy::too_many_arguments)]
fn run_stream(
    cell: &Arc<SessionCell>,
    source: StreamSource,
    gpu: GpuConfig,
    overrides: ConfigOverrides,
    shards: Option<usize>,
    checkpoint_path: Option<PathBuf>,
    resume: bool,
    exec: Executor,
) -> Result<Value, (Status, Option<String>)> {
    let mut boxed: Box<dyn KernelSource> = match source {
        StreamSource::Workload(w) => Box::new(WorkloadSource::new(w, Profiler::new(gpu))),
        StreamSource::Feed(feed) => Box::new(feed),
        StreamSource::Synthetic(n) => Box::new(WorkloadSource::new(
            synthetic_workload(n),
            Profiler::new(gpu),
        )),
    };

    // A resume adopts the checkpoint's embedded config echo (explicit spec
    // fields still apply on top) and the checkpoint's topology, exactly
    // like `pka stream --resume`.
    let resume_value: Option<Value> = if resume {
        let path = checkpoint_path.as_ref().expect("resume requires a path");
        let text = std::fs::read_to_string(path)
            .map_err(|e| (Status::Failed, Some(format!("read {}: {e}", path.display()))))?;
        Some(
            serde_json::from_str(&text)
                .map_err(|e| (Status::Failed, Some(format!("parse {}: {e}", path.display()))))?,
        )
    } else {
        None
    };
    let resume_is_sharded = resume_value
        .as_ref()
        .is_some_and(|v| v["topology"].as_object().is_some());
    let fail = |e: StreamError| (Status::Failed, Some(e.to_string()));
    let (resume_cp, resume_sharded_cp) = match &resume_value {
        Some(v) if resume_is_sharded => {
            (None, Some(ShardedCheckpoint::from_value(v).map_err(fail)?))
        }
        Some(v) => (Some(Checkpoint::from_value(v).map_err(fail)?), None),
        None => (None, None),
    };
    let base_config = match (&resume_cp, &resume_sharded_cp) {
        (Some(cp), _) => StreamConfig::from_value(&cp.config).map_err(fail)?,
        (_, Some(cp)) => StreamConfig::from_value(&cp.config).map_err(fail)?,
        _ => StreamConfig::default(),
    };
    let config = overrides.apply(base_config);
    let shards = match (shards, &resume_sharded_cp) {
        (Some(n), _) => Some(n),
        (None, Some(cp)) => Some(cp.shards),
        (None, None) => None,
    };

    match shards {
        Some(n) => {
            let engine = ShardedStreamPks::new(config, n).with_executor(exec);
            let on_cell = Arc::clone(cell);
            let ckpt = checkpoint_path.clone();
            let on_checkpoint = move |cp: &ShardedCheckpoint| -> Result<(), StreamError> {
                if let Some(p) = &ckpt {
                    cp.write_to(p)?;
                }
                let line = stamp_line(&sharded_record(cp), cp.seq);
                let mut st = on_cell.state.lock().expect("session state");
                st.records = cp.records;
                st.selected_k = Some(cp.selected_k);
                let mut bytes = cp.to_json();
                bytes.push('\n');
                st.last_checkpoint = Some(bytes);
                push_progress(&mut st, line);
                drop(st);
                on_cell.progress_wake.notify_all();
                Ok(())
            };
            let outcome = match &resume_sharded_cp {
                Some(cp) => {
                    engine.resume_with_cancel(&mut *boxed, cp, on_checkpoint, &cell.cancel)
                }
                None => engine.run_with_cancel(&mut *boxed, on_checkpoint, &cell.cancel),
            }
            .map_err(terminal_of)?;
            if let Some(p) = &checkpoint_path {
                outcome.final_checkpoint.write_to(p).map_err(terminal_of)?;
            }
            let attribution = attribution_bytes(&outcome.attribution)?;
            let mut final_bytes = outcome.final_checkpoint.to_json();
            final_bytes.push('\n');
            let mut st = cell.state.lock().expect("session state");
            st.records = outcome.report.records;
            st.selected_k = Some(outcome.report.selected_k);
            st.final_checkpoint = Some(final_bytes);
            st.attribution = Some(attribution);
            drop(st);
            Ok(json!({
                "mode": "stream",
                "selected_k": outcome.report.selected_k as u64,
                "projected_cycles": outcome.report.projected_cycles,
                "report": outcome.report.to_value(),
                "shards": outcome.shard_records,
                "map_hash": outcome.map_hash,
            }))
        }
        None => {
            let engine = StreamPks::new(config).with_executor(exec);
            let on_cell = Arc::clone(cell);
            let ckpt = checkpoint_path.clone();
            let on_checkpoint = move |cp: &Checkpoint| -> Result<(), StreamError> {
                if let Some(p) = &ckpt {
                    cp.write_to(p)?;
                }
                let line = stamp_line(&single_record(cp), cp.seq);
                let mut st = on_cell.state.lock().expect("session state");
                st.records = cp.records;
                st.selected_k = Some(cp.selected_k);
                let mut bytes = cp.to_json();
                bytes.push('\n');
                st.last_checkpoint = Some(bytes);
                push_progress(&mut st, line);
                drop(st);
                on_cell.progress_wake.notify_all();
                Ok(())
            };
            let outcome = match &resume_cp {
                Some(cp) => {
                    engine.resume_with_cancel(&mut *boxed, cp, on_checkpoint, &cell.cancel)
                }
                None => engine.run_with_cancel(&mut *boxed, on_checkpoint, &cell.cancel),
            }
            .map_err(terminal_of)?;
            if let Some(p) = &checkpoint_path {
                outcome.final_checkpoint.write_to(p).map_err(terminal_of)?;
            }
            let attribution = attribution_bytes(&outcome.attribution)?;
            let mut final_bytes = outcome.final_checkpoint.to_json();
            final_bytes.push('\n');
            let mut st = cell.state.lock().expect("session state");
            st.records = outcome.report.records;
            st.selected_k = Some(outcome.report.selected_k);
            st.final_checkpoint = Some(final_bytes);
            st.attribution = Some(attribution);
            drop(st);
            Ok(json!({
                "mode": "stream",
                "selected_k": outcome.report.selected_k as u64,
                "projected_cycles": outcome.report.projected_cycles,
                "report": outcome.report.to_value(),
            }))
        }
    }
}

fn run_select(
    cell: &Arc<SessionCell>,
    workload: Workload,
    target_error: f64,
    exec: Executor,
) -> Result<Value, (Status, Option<String>)> {
    if cell.cancel.is_cancelled() {
        return Err((Status::Cancelled, None));
    }
    let config = PkaConfig::default()
        .with_pks(PksConfig::default().with_target_error_pct(target_error))
        .with_executor(exec);
    let pka = Pka::new(GpuConfig::v100(), config);
    let (selection, attribution) = pka
        .select_kernels_with_attribution(&workload)
        .map_err(|e| (Status::Failed, Some(e.to_string())))?;
    let attribution = attribution_bytes(&attribution)?;
    let mut st = cell.state.lock().expect("session state");
    st.records = workload.kernel_count();
    st.selected_k = Some(selection.k());
    st.attribution = Some(attribution);
    drop(st);
    let groups: Vec<Value> = selection
        .groups()
        .iter()
        .map(|g| {
            json!({
                "representative": format!("{}", g.representative()),
                "count": g.count(),
            })
        })
        .collect();
    Ok(json!({
        "mode": "select",
        "workload": workload.name(),
        "kernels_total": workload.kernel_count(),
        "selected_k": selection.k() as u64,
        "error_pct": selection.error_pct(),
        "group_deviation_pct": selection.group_deviation_pct(),
        "groups": groups,
        "selection": selection,
    }))
}

fn run_simulate(
    cell: &Arc<SessionCell>,
    workload: Workload,
    gpu: GpuConfig,
    threshold: f64,
    full: bool,
    exec: Executor,
) -> Result<Value, (Status, Option<String>)> {
    if cell.cancel.is_cancelled() {
        return Err((Status::Cancelled, None));
    }
    let config = PkaConfig::default()
        .with_pkp(PkpConfig::default().with_threshold(threshold))
        .with_executor(exec);
    let pka = Pka::new(gpu, config);
    let (report, attribution) = pka
        .evaluate_with_attribution(&workload, full)
        .map_err(|e| (Status::Failed, Some(e.to_string())))?;
    let attribution = attribution_bytes(&attribution)?;
    let mut st = cell.state.lock().expect("session state");
    st.records = workload.kernel_count();
    st.selected_k = Some(report.per_representative.len());
    st.attribution = Some(attribution);
    drop(st);
    let per_rep: Vec<Value> = report
        .per_representative
        .iter()
        .map(|rp| {
            json!({
                "kernel_id": format!("{}", rp.kernel_id),
                "simulated_cycles": rp.simulated_cycles,
                "projected_cycles": rp.projected_cycles,
                "skip_ratio": rp.skip_ratio(),
            })
        })
        .collect();
    Ok(json!({
        "mode": "simulate",
        "workload": report.workload,
        "silicon_cycles": report.silicon_cycles,
        "fullsim_cycles": report.fullsim_cycles,
        "sim_error_pct": report.sim_error_pct,
        "pks": {
            "projected_cycles": report.pks_projected_cycles,
            "error_pct": report.pks_error_pct,
            "hours": report.pks_hours,
            "speedup": report.pks_speedup(),
        },
        "pka": {
            "projected_cycles": report.pka_projected_cycles,
            "error_pct": report.pka_error_pct,
            "hours": report.pka_hours,
            "speedup": report.pka_speedup(),
        },
        "per_representative": per_rep,
    }))
}
