//! **PKA as a long-running analysis service.**
//!
//! Everything the CLI does in one shot — batch select/simulate, streaming
//! ingestion with checkpoints — hosted behind a hand-rolled HTTP/1.1
//! endpoint (`std::net::TcpListener` + a bounded connection thread pool;
//! zero external dependencies, like the rest of the workspace) as
//! long-lived *session objects* with live progress and cancellation-safe
//! teardown.
//!
//! # Protocol
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `GET /metrics` | Prometheus text exposition of every registered metric |
//! | `POST /v1/sessions` | create a session from a JSON spec |
//! | `GET /v1/sessions` | list sessions |
//! | `GET /v1/sessions/{id}` | one session's status |
//! | `POST /v1/sessions/{id}/records` | append JSONL kernel records (feed sessions) |
//! | `POST /v1/sessions/{id}/finish` | end-of-stream for a feed session |
//! | `GET /v1/sessions/{id}/progress` | `pka.snapshot/v1` NDJSON progress stream |
//! | `GET /v1/sessions/{id}/events` | long-lived SSE stream of new progress records |
//! | `GET /v1/sessions/{id}/result` | result document (`202` while running) |
//! | `GET /v1/sessions/{id}/checkpoint` | checkpoint bytes (final, else latest) |
//! | `GET /v1/sessions/{id}/attribution` | `pka.attribution/v1` bytes |
//! | `DELETE /v1/sessions/{id}` | cancellation-safe teardown |
//! | `POST /v1/shutdown` | stop the service (tears every session down) |
//!
//! # Request correlation
//!
//! With observability on (`pka_obs::enable`), every request is assigned a
//! process-monotonic `req_id` and produces one structured stderr access
//! line — `{"type":"access","req_id":..,"method":..,"path":..,"status":..,
//! "bytes":..,"duration_ns":..,"session":..}` — plus, when a trace sink is
//! attached, a `server.request` trace event carrying the same fields, so a
//! request can be joined against its session worker's `stream.*` events by
//! `req_id`/session id.
//!
//! The artifact endpoints serve the *exact bytes* the CLI writes for the
//! same run (`--checkpoint` / `--attribution-out`), so `cmp` against a
//! `pka stream` run passes — the HTTP surface adds zero numeric drift.
//!
//! # Determinism
//!
//! Sessions share one process-wide [`Executor`](pka_core::Executor) value
//! and nothing else: each session's pipeline state is private, progress is
//! derived purely from checkpoint contents (no wall-clock), and the
//! streaming engines are bitwise deterministic for any worker count — so
//! any interleaving of concurrent sessions produces byte-identical
//! checkpoints, attributions and progress to running them serially.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod http;
mod session;

pub use http::{read_request, ReadError, Request, Response};
pub use session::{Registry, Session, SessionState, Status, PROGRESS_CAP};

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pka_core::Executor;
use serde_json::{json, Value};

/// Histogram edges for `server.request_ns` (1 µs .. 10 s).
const REQUEST_EDGES: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Connection-handler threads.
    pub http_threads: usize,
    /// Executor workers shared by every session's pipeline (0 = all cores).
    pub workers: usize,
    /// Maximum concurrently running (non-terminal) sessions.
    pub max_active_sessions: usize,
    /// Completed sessions retained for inspection before LRU eviction.
    pub retain_completed: usize,
    /// Feed queue capacity per streaming session, in JSONL lines.
    pub feed_capacity: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Per-connection read/write timeout in milliseconds (slow-loris
    /// guard): a client that opens a socket and never completes a request
    /// gets `408` and the connection back instead of pinning a pool
    /// thread. Also bounds how long a stalled `events` subscriber can
    /// block a write.
    pub read_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            http_threads: 4,
            workers: 1,
            max_active_sessions: 8,
            retain_completed: 16,
            feed_capacity: 8_192,
            max_body_bytes: 64 * 1024 * 1024,
            read_timeout_ms: 30_000,
        }
    }
}

impl ServerConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the connection-handler thread count (min 1).
    pub fn with_http_threads(mut self, n: usize) -> Self {
        self.http_threads = n.max(1);
        self
    }

    /// Sets the shared executor worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the running-session cap (min 1).
    pub fn with_max_active_sessions(mut self, n: usize) -> Self {
        self.max_active_sessions = n.max(1);
        self
    }

    /// Sets how many completed sessions are retained.
    pub fn with_retain_completed(mut self, n: usize) -> Self {
        self.retain_completed = n;
        self
    }

    /// Sets the per-session feed queue capacity (min 1).
    pub fn with_feed_capacity(mut self, n: usize) -> Self {
        self.feed_capacity = n.max(1);
        self
    }

    /// Sets the per-connection read/write timeout in milliseconds (min 1).
    pub fn with_read_timeout_ms(mut self, ms: u64) -> Self {
        self.read_timeout_ms = ms.max(1);
        self
    }
}

/// Bounded queue of accepted connections feeding the handler pool.
struct ConnQueue {
    queue: Mutex<(std::collections::VecDeque<TcpStream>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> Self {
        Self {
            queue: Mutex::new((std::collections::VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, stream: TcpStream) {
        let mut q = self.queue.lock().expect("conn queue");
        q.0.push_back(stream);
        self.ready.notify_one();
    }

    fn close(&self) {
        let mut q = self.queue.lock().expect("conn queue");
        q.1 = true;
        self.ready.notify_all();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.queue.lock().expect("conn queue");
        loop {
            if let Some(s) = q.0.pop_front() {
                return Some(s);
            }
            if q.1 {
                return None;
            }
            q = self.ready.wait(q).expect("conn queue");
        }
    }
}

/// The PKA analysis service.
pub struct PkaServer {
    listener: TcpListener,
    registry: Registry,
    config: ServerConfig,
    stop: AtomicBool,
    next_request_id: AtomicU64,
}

impl PkaServer {
    /// Binds the listener and builds the session registry.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let registry = Registry::new(
            config.max_active_sessions,
            config.retain_completed,
            config.feed_capacity,
            Executor::new(config.workers),
        );
        Ok(Self {
            listener,
            registry,
            config,
            stop: AtomicBool::new(false),
            next_request_id: AtomicU64::new(0),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the (unlikely) local-address query failure.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The session registry (for in-process tests and embedding).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Requests shutdown and wakes the accept loop with a self-connect.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Ok(addr) = self.addr() {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Serves until `POST /v1/shutdown` (or
    /// [`request_stop`](Self::request_stop)), then tears every session down
    /// and joins all workers before returning — cancellation-safe service
    /// exit.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn run(&self) -> std::io::Result<()> {
        let queue = ConnQueue::new();
        std::thread::scope(|scope| -> std::io::Result<()> {
            for i in 0..self.config.http_threads.max(1) {
                let queue = &queue;
                std::thread::Builder::new()
                    .name(format!("pka-http-{i}"))
                    .spawn_scoped(scope, move || {
                        while let Some(stream) = queue.pop() {
                            self.serve_connection(stream);
                        }
                    })
                    .expect("spawn http worker");
            }
            loop {
                let (stream, _) = self.listener.accept()?;
                if self.stop.load(Ordering::SeqCst) {
                    drop(stream);
                    break;
                }
                queue.push(stream);
            }
            queue.close();
            Ok(())
        })?;
        self.registry.shutdown();
        Ok(())
    }

    /// One keep-alive connection: read requests until close/EOF/timeout.
    fn serve_connection(&self, stream: TcpStream) {
        let timeout = Duration::from_millis(self.config.read_timeout_ms.max(1));
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        let mut writer = write_half;
        let mut reader = BufReader::new(stream);
        loop {
            let request = match read_request(&mut reader, self.config.max_body_bytes) {
                Ok(r) => r,
                Err(ReadError::Closed) => return,
                Err(ReadError::Io(e)) => {
                    // A read timeout is the slow-loris guard firing; anything
                    // else is a dead transport not worth answering on.
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) {
                        if pka_obs::enabled() {
                            pka_obs::counter("server.timeouts").incr();
                        }
                        let _ = Response::error(408, "request read timed out")
                            .write_to(&mut writer, false);
                    }
                    return;
                }
                Err(ReadError::Malformed(m)) => {
                    let _ = Response::error(400, &m).write_to(&mut writer, false);
                    return;
                }
                Err(ReadError::TooLarge) => {
                    let _ = Response::error(413, "request body too large")
                        .write_to(&mut writer, false);
                    return;
                }
            };
            let req_id = self.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
            let close = request.wants_close();
            let t0 = Instant::now();

            // The events stream writes the connection itself (no fixed
            // Content-Length) and holds it until the session ends; an
            // unknown session id falls through to normal routing for 404.
            if request.method == "GET" {
                if let Some(rest) = request.path.trim_end_matches('/').strip_prefix("/v1/sessions/")
                {
                    if let Some((id, "events")) = rest.split_once('/') {
                        if let Some(session) = self.registry.get(id) {
                            let bytes = self.serve_events(&mut writer, &session);
                            self.observe_request(req_id, &request, 200, bytes, t0, Some(id));
                            return;
                        }
                    }
                }
            }

            let response = self.route(&request);
            let session = session_of(&request, &response);
            self.observe_request(
                req_id,
                &request,
                response.status,
                response.body.len() as u64,
                t0,
                session.as_deref(),
            );
            if response.write_to(&mut writer, !close).is_err() {
                return;
            }
            let _ = writer.flush();
            if close {
                return;
            }
        }
    }

    /// Metrics, access log, and trace correlation for one finished request.
    fn observe_request(
        &self,
        req_id: u64,
        req: &Request,
        status: u16,
        bytes: u64,
        t0: Instant,
        session: Option<&str>,
    ) {
        if !pka_obs::enabled() {
            return;
        }
        let duration_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        pka_obs::counter("server.requests").incr();
        pka_obs::histogram("server.request_ns", REQUEST_EDGES).record(duration_ns);
        if status >= 400 {
            pka_obs::counter("server.http_errors").incr();
        }
        let fields = request_fields(req_id, &req.method, &req.path, status, bytes, duration_ns, session);
        eprintln!("{}", access_log_line(&fields));
        pka_obs::trace_event("server.request", Value::Object(fields));
    }

    /// Serves `GET /v1/sessions/{id}/events`: a long-lived `text/event-stream`
    /// response pushing each new `pka.snapshot/v1` progress record as it is
    /// stamped into the session's bounded ring, then one `event: end` when
    /// the session reaches a terminal status (including DELETE teardown).
    ///
    /// Back-pressure and bounds: the stream re-reads the shared
    /// [`PROGRESS_CAP`] ring (no per-subscriber buffering), a stalled
    /// subscriber blocks at most `read_timeout_ms` on a write before being
    /// dropped, and a subscriber that lags more than `PROGRESS_CAP`
    /// checkpoints simply misses the lines the ring itself evicted.
    ///
    /// Returns the number of body bytes written.
    fn serve_events(&self, writer: &mut TcpStream, session: &Arc<Session>) -> u64 {
        let mut written = 0u64;
        let mut send = |writer: &mut TcpStream, chunk: &str| -> bool {
            if writer.write_all(chunk.as_bytes()).and_then(|()| writer.flush()).is_ok() {
                written += chunk.len() as u64;
                true
            } else {
                false
            }
        };
        let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
        if writer.write_all(head.as_bytes()).is_err() {
            return 0;
        }
        if !send(
            writer,
            "data: {\"schema\":\"pka.snapshot/v1\",\"type\":\"header\"}\n\n",
        ) {
            return written;
        }

        let mut last_seq: Option<u64> = None;
        loop {
            // Collect everything newer than the last delivered seq (plus the
            // terminal status) under one lock, then write outside it.
            let mut batch: Vec<String> = Vec::new();
            let mut terminal: Option<Status> = None;
            {
                let mut st = session.cell.state.lock().expect("session state");
                loop {
                    for line in &st.progress {
                        let seq = line_seq(line);
                        if last_seq.map_or(true, |l| seq.is_some_and(|s| s > l)) {
                            batch.push(line.clone());
                            if seq.is_some() {
                                last_seq = seq;
                            }
                        }
                    }
                    let status = st.status();
                    if status.is_terminal() {
                        terminal = Some(status);
                        break;
                    }
                    if !batch.is_empty() {
                        break;
                    }
                    let (guard, wait) = session
                        .cell
                        .progress_wake
                        .wait_timeout(st, Duration::from_millis(500))
                        .expect("session state");
                    st = guard;
                    if wait.timed_out() {
                        // Emit a keep-alive comment so a vanished client is
                        // detected by the write failing.
                        break;
                    }
                }
            }
            for line in &batch {
                if !send(writer, &format!("data: {line}\n\n")) {
                    return written;
                }
            }
            if let Some(status) = terminal {
                let _ = send(
                    writer,
                    &format!("event: end\ndata: {{\"status\":\"{}\"}}\n\n", status.as_str()),
                );
                return written;
            }
            if batch.is_empty() && !send(writer, ": keep-alive\n\n") {
                return written;
            }
        }
    }

    /// Dispatches one request.
    fn route(&self, req: &Request) -> Response {
        let path = req.path.trim_end_matches('/');
        match (req.method.as_str(), path) {
            ("GET", "/healthz") => Response::json(200, &json!({ "ok": true })),
            ("GET", "/metrics") => Response::raw(
                200,
                pka_obs::EXPOSITION_CONTENT_TYPE,
                pka_obs::global_prometheus(),
            ),
            ("POST", "/v1/shutdown") => {
                // Respond first-come; the wake connection unblocks accept.
                self.request_stop();
                Response::json(200, &json!({ "ok": true }))
            }
            ("POST", "/v1/sessions") => self.create_session(req),
            ("GET", "/v1/sessions") => {
                Response::json(200, &json!({ "sessions": self.registry.list() }))
            }
            _ => {
                if let Some(rest) = path.strip_prefix("/v1/sessions/") {
                    return self.session_route(req, rest);
                }
                Response::error(404, "no such route")
            }
        }
    }

    fn create_session(&self, req: &Request) -> Response {
        let body = match req.body_text() {
            Ok(t) => t,
            Err(_) => return Response::error(400, "request body is not UTF-8"),
        };
        let spec: Value = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("invalid session spec: {e}")),
        };
        match self.registry.create(&spec) {
            Ok(session) => Response::json(
                200,
                &json!({
                    "id": session.cell.id,
                    "mode": session.mode,
                    "source": session.source,
                }),
            ),
            Err((status, message)) => Response::error(status, &message),
        }
    }

    fn session_route(&self, req: &Request, rest: &str) -> Response {
        let (id, action) = match rest.split_once('/') {
            Some((id, action)) => (id, Some(action)),
            None => (rest, None),
        };
        let Some(session) = self.registry.get(id) else {
            return Response::error(404, &format!("no session `{id}`"));
        };
        match (req.method.as_str(), action) {
            ("GET", None) => Response::json(200, &session.describe()),
            ("DELETE", None) => match self.registry.teardown(id) {
                Some(summary) => Response::json(200, &summary),
                None => Response::error(404, &format!("no session `{id}`")),
            },
            ("POST", Some("records")) => self.append_records(req, &session),
            ("POST", Some("finish")) => match &session.feed {
                Some(feed) => {
                    feed.finish();
                    Response::json(200, &json!({ "ok": true }))
                }
                None => Response::error(409, "session is not feed-backed"),
            },
            ("GET", Some("progress")) => {
                let st = session.cell.state.lock().expect("session state");
                let mut body = String::new();
                body.push_str("{\"schema\":\"pka.snapshot/v1\",\"type\":\"header\"}\n");
                for line in &st.progress {
                    body.push_str(line);
                    body.push('\n');
                }
                drop(st);
                Response::raw(200, "application/x-ndjson", body)
            }
            ("GET", Some("result")) => {
                let st = session.cell.state.lock().expect("session state");
                match st.status() {
                    Status::Done => {
                        let result = st.result.clone().unwrap_or(Value::Null);
                        Response::json(200, &result)
                    }
                    Status::Failed => {
                        let msg = st.error.clone().unwrap_or_else(|| "failed".into());
                        Response::json(
                            409,
                            &json!({ "status": "failed", "error": msg }),
                        )
                    }
                    Status::Cancelled => {
                        Response::json(409, &json!({ "status": "cancelled" }))
                    }
                    s => Response::json(202, &json!({ "status": s.as_str() })),
                }
            }
            ("GET", Some("checkpoint")) => {
                let st = session.cell.state.lock().expect("session state");
                let bytes = st
                    .final_checkpoint
                    .clone()
                    .or_else(|| st.last_checkpoint.clone());
                match bytes {
                    Some(b) => Response::raw(200, "application/json", b),
                    None => Response::error(404, "no checkpoint yet"),
                }
            }
            ("GET", Some("attribution")) => {
                let st = session.cell.state.lock().expect("session state");
                match st.attribution.clone() {
                    Some(b) => Response::raw(200, "application/json", b),
                    None => Response::error(404, "no attribution yet"),
                }
            }
            _ => Response::error(405, "unsupported session operation"),
        }
    }

    fn append_records(&self, req: &Request, session: &Session) -> Response {
        let Some(feed) = &session.feed else {
            return Response::error(409, "session is not feed-backed");
        };
        if session
            .cell
            .state
            .lock()
            .expect("session state")
            .status()
            .is_terminal()
        {
            return Response::error(409, "session already finished");
        }
        let text = match req.body_text() {
            Ok(t) => t,
            Err(_) => return Response::error(400, "request body is not UTF-8"),
        };
        match feed.push_lines(text) {
            Ok(accepted) => Response::json(
                200,
                &json!({ "accepted": accepted, "buffered": feed.buffered() as u64 }),
            ),
            Err(e) => Response::error(409, &e.to_string()),
        }
    }
}

/// The `seq` a stamped progress line carries (`None` for non-ring lines;
/// every ring line is stamped with one).
fn line_seq(line: &str) -> Option<u64> {
    serde_json::from_str::<Value>(line).ok()?.get("seq")?.as_u64()
}

/// The correlation fields shared by the access log line and the
/// `server.request` trace event, in one place so they cannot drift apart.
fn request_fields(
    req_id: u64,
    method: &str,
    path: &str,
    status: u16,
    bytes: u64,
    duration_ns: u64,
    session: Option<&str>,
) -> serde_json::Map {
    let mut m = serde_json::Map::new();
    m.insert("req_id".into(), Value::from(req_id));
    m.insert("method".into(), Value::from(method));
    m.insert("path".into(), Value::from(path));
    m.insert("status".into(), Value::from(u64::from(status)));
    m.insert("bytes".into(), Value::from(bytes));
    m.insert("duration_ns".into(), Value::from(duration_ns));
    m.insert(
        "session".into(),
        session.map_or(Value::Null, Value::from),
    );
    m
}

/// Renders one structured access-log line (single-line JSON, stderr).
fn access_log_line(fields: &serde_json::Map) -> String {
    let mut m = serde_json::Map::new();
    m.insert("type".into(), Value::from("access"));
    for (k, v) in fields {
        m.insert(k.clone(), v.clone());
    }
    Value::Object(m).to_string()
}

/// The session id a request touched: the path segment for
/// `/v1/sessions/{id}...`, or the id minted by a successful create.
fn session_of(req: &Request, response: &Response) -> Option<String> {
    let path = req.path.trim_end_matches('/');
    if let Some(rest) = path.strip_prefix("/v1/sessions/") {
        let id = rest.split('/').next().unwrap_or(rest);
        if !id.is_empty() {
            return Some(id.to_string());
        }
    }
    if req.method == "POST" && path == "/v1/sessions" && response.status == 200 {
        let v: Value = serde_json::from_str(std::str::from_utf8(&response.body).ok()?).ok()?;
        return v.get("id")?.as_str().map(str::to_string);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Read};

    fn send(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            reader.read_line(&mut h).expect("header");
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf8"))
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        send(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        send(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn access_log_line_is_single_line_json_with_all_fields() {
        let fields = request_fields(7, "GET", "/v1/sessions/s2/result", 202, 34, 1_500, Some("s2"));
        let line = access_log_line(&fields);
        assert!(!line.contains('\n'));
        let v: Value = serde_json::from_str(&line).expect("valid json");
        assert_eq!(v["type"].as_str(), Some("access"));
        assert_eq!(v["req_id"].as_u64(), Some(7));
        assert_eq!(v["method"].as_str(), Some("GET"));
        assert_eq!(v["path"].as_str(), Some("/v1/sessions/s2/result"));
        assert_eq!(v["status"].as_u64(), Some(202));
        assert_eq!(v["bytes"].as_u64(), Some(34));
        assert_eq!(v["duration_ns"].as_u64(), Some(1_500));
        assert_eq!(v["session"].as_str(), Some("s2"));
    }

    #[test]
    fn session_of_resolves_path_segment_and_create_response() {
        let req = |method: &str, path: &str| Request {
            method: method.to_string(),
            path: path.to_string(),
            query: String::new(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        let ok = Response::json(200, &json!({ "id": "s9", "mode": "stream" }));
        assert_eq!(
            session_of(&req("GET", "/v1/sessions/s3/progress"), &ok).as_deref(),
            Some("s3")
        );
        assert_eq!(
            session_of(&req("DELETE", "/v1/sessions/s3"), &ok).as_deref(),
            Some("s3")
        );
        assert_eq!(
            session_of(&req("POST", "/v1/sessions"), &ok).as_deref(),
            Some("s9")
        );
        let rejected = Response::error(429, "cap");
        assert_eq!(session_of(&req("POST", "/v1/sessions"), &rejected), None);
        assert_eq!(session_of(&req("GET", "/healthz"), &ok), None);
    }

    #[test]
    fn line_seq_reads_stamped_lines_and_skips_headers() {
        assert_eq!(line_seq("{\"type\":\"snapshot\",\"seq\":41}"), Some(41));
        assert_eq!(line_seq("{\"schema\":\"pka.snapshot/v1\",\"type\":\"header\"}"), None);
        assert_eq!(line_seq("not json"), None);
    }

    #[test]
    fn slow_request_times_out_with_408() {
        let config = ServerConfig::default().with_read_timeout_ms(150);
        let server = PkaServer::bind(config).expect("bind");
        let addr = server.addr().expect("addr");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run().expect("run"));
            // Open a socket, send half a request line, then stall.
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(b"GET /healthz HT").expect("partial");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut status_line = String::new();
            reader.read_line(&mut status_line).expect("status line");
            assert!(
                status_line.starts_with("HTTP/1.1 408"),
                "expected 408, got: {status_line}"
            );
            let (status, _) = post(addr, "/v1/shutdown", "");
            assert_eq!(status, 200);
            handle.join().expect("server thread");
        });
    }

    #[test]
    fn metrics_route_serves_parseable_exposition() {
        let server = PkaServer::bind(ServerConfig::default()).expect("bind");
        let addr = server.addr().expect("addr");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run().expect("run"));
            let (status, body) = get(addr, "/metrics");
            assert_eq!(status, 200);
            // Whatever the global registry holds at this point, the body
            // must be inside the exposition grammar.
            let doc = pka_obs::parse_exposition(&body).expect("valid exposition");
            assert_eq!(doc["schema"].as_str(), Some("pka.run_manifest/v1"));
            let (status, _) = post(addr, "/v1/shutdown", "");
            assert_eq!(status, 200);
            handle.join().expect("server thread");
        });
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let server = PkaServer::bind(ServerConfig::default()).expect("bind");
        let addr = server.addr().expect("addr");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run().expect("run"));
            let (status, body) = get(addr, "/healthz");
            assert_eq!(status, 200);
            assert!(body.contains("\"ok\":true"), "{body}");
            let (status, _) = get(addr, "/nope");
            assert_eq!(status, 404);
            let (status, _) = get(addr, "/v1/sessions/s99");
            assert_eq!(status, 404);
            let (status, _) = post(addr, "/v1/shutdown", "");
            assert_eq!(status, 200);
            handle.join().expect("server thread");
        });
    }

    #[test]
    fn bad_spec_is_rejected_synchronously() {
        let server = PkaServer::bind(ServerConfig::default()).expect("bind");
        let addr = server.addr().expect("addr");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run().expect("run"));
            let (status, body) = post(addr, "/v1/sessions", "{\"mode\":\"nope\"}");
            assert_eq!(status, 400, "{body}");
            let (status, body) =
                post(addr, "/v1/sessions", "{\"source\":\"synthetic:0\"}");
            assert_eq!(status, 400, "{body}");
            let (status, _) = post(addr, "/v1/shutdown", "");
            assert_eq!(status, 200);
            handle.join().expect("server thread");
        });
    }
}
