//! **PKA as a long-running analysis service.**
//!
//! Everything the CLI does in one shot — batch select/simulate, streaming
//! ingestion with checkpoints — hosted behind a hand-rolled HTTP/1.1
//! endpoint (`std::net::TcpListener` + a bounded connection thread pool;
//! zero external dependencies, like the rest of the workspace) as
//! long-lived *session objects* with live progress and cancellation-safe
//! teardown.
//!
//! # Protocol
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `POST /v1/sessions` | create a session from a JSON spec |
//! | `GET /v1/sessions` | list sessions |
//! | `GET /v1/sessions/{id}` | one session's status |
//! | `POST /v1/sessions/{id}/records` | append JSONL kernel records (feed sessions) |
//! | `POST /v1/sessions/{id}/finish` | end-of-stream for a feed session |
//! | `GET /v1/sessions/{id}/progress` | `pka.snapshot/v1` NDJSON progress stream |
//! | `GET /v1/sessions/{id}/result` | result document (`202` while running) |
//! | `GET /v1/sessions/{id}/checkpoint` | checkpoint bytes (final, else latest) |
//! | `GET /v1/sessions/{id}/attribution` | `pka.attribution/v1` bytes |
//! | `DELETE /v1/sessions/{id}` | cancellation-safe teardown |
//! | `POST /v1/shutdown` | stop the service (tears every session down) |
//!
//! The artifact endpoints serve the *exact bytes* the CLI writes for the
//! same run (`--checkpoint` / `--attribution-out`), so `cmp` against a
//! `pka stream` run passes — the HTTP surface adds zero numeric drift.
//!
//! # Determinism
//!
//! Sessions share one process-wide [`Executor`](pka_core::Executor) value
//! and nothing else: each session's pipeline state is private, progress is
//! derived purely from checkpoint contents (no wall-clock), and the
//! streaming engines are bitwise deterministic for any worker count — so
//! any interleaving of concurrent sessions produces byte-identical
//! checkpoints, attributions and progress to running them serially.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod http;
mod session;

pub use http::{read_request, ReadError, Request, Response};
pub use session::{Registry, Session, SessionState, Status, PROGRESS_CAP};

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use pka_core::Executor;
use serde_json::{json, Value};

/// Histogram edges for `server.request_ns` (1 µs .. 10 s).
const REQUEST_EDGES: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Connection-handler threads.
    pub http_threads: usize,
    /// Executor workers shared by every session's pipeline (0 = all cores).
    pub workers: usize,
    /// Maximum concurrently running (non-terminal) sessions.
    pub max_active_sessions: usize,
    /// Completed sessions retained for inspection before LRU eviction.
    pub retain_completed: usize,
    /// Feed queue capacity per streaming session, in JSONL lines.
    pub feed_capacity: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            http_threads: 4,
            workers: 1,
            max_active_sessions: 8,
            retain_completed: 16,
            feed_capacity: 8_192,
            max_body_bytes: 64 * 1024 * 1024,
        }
    }
}

impl ServerConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the connection-handler thread count (min 1).
    pub fn with_http_threads(mut self, n: usize) -> Self {
        self.http_threads = n.max(1);
        self
    }

    /// Sets the shared executor worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the running-session cap (min 1).
    pub fn with_max_active_sessions(mut self, n: usize) -> Self {
        self.max_active_sessions = n.max(1);
        self
    }

    /// Sets how many completed sessions are retained.
    pub fn with_retain_completed(mut self, n: usize) -> Self {
        self.retain_completed = n;
        self
    }

    /// Sets the per-session feed queue capacity (min 1).
    pub fn with_feed_capacity(mut self, n: usize) -> Self {
        self.feed_capacity = n.max(1);
        self
    }
}

/// Bounded queue of accepted connections feeding the handler pool.
struct ConnQueue {
    queue: Mutex<(std::collections::VecDeque<TcpStream>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> Self {
        Self {
            queue: Mutex::new((std::collections::VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, stream: TcpStream) {
        let mut q = self.queue.lock().expect("conn queue");
        q.0.push_back(stream);
        self.ready.notify_one();
    }

    fn close(&self) {
        let mut q = self.queue.lock().expect("conn queue");
        q.1 = true;
        self.ready.notify_all();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.queue.lock().expect("conn queue");
        loop {
            if let Some(s) = q.0.pop_front() {
                return Some(s);
            }
            if q.1 {
                return None;
            }
            q = self.ready.wait(q).expect("conn queue");
        }
    }
}

/// The PKA analysis service.
pub struct PkaServer {
    listener: TcpListener,
    registry: Registry,
    config: ServerConfig,
    stop: AtomicBool,
}

impl PkaServer {
    /// Binds the listener and builds the session registry.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let registry = Registry::new(
            config.max_active_sessions,
            config.retain_completed,
            config.feed_capacity,
            Executor::new(config.workers),
        );
        Ok(Self {
            listener,
            registry,
            config,
            stop: AtomicBool::new(false),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the (unlikely) local-address query failure.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The session registry (for in-process tests and embedding).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Requests shutdown and wakes the accept loop with a self-connect.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Ok(addr) = self.addr() {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Serves until `POST /v1/shutdown` (or
    /// [`request_stop`](Self::request_stop)), then tears every session down
    /// and joins all workers before returning — cancellation-safe service
    /// exit.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn run(&self) -> std::io::Result<()> {
        let queue = ConnQueue::new();
        std::thread::scope(|scope| -> std::io::Result<()> {
            for i in 0..self.config.http_threads.max(1) {
                let queue = &queue;
                std::thread::Builder::new()
                    .name(format!("pka-http-{i}"))
                    .spawn_scoped(scope, move || {
                        while let Some(stream) = queue.pop() {
                            self.serve_connection(stream);
                        }
                    })
                    .expect("spawn http worker");
            }
            loop {
                let (stream, _) = self.listener.accept()?;
                if self.stop.load(Ordering::SeqCst) {
                    drop(stream);
                    break;
                }
                queue.push(stream);
            }
            queue.close();
            Ok(())
        })?;
        self.registry.shutdown();
        Ok(())
    }

    /// One keep-alive connection: read requests until close/EOF/timeout.
    fn serve_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        let mut writer = write_half;
        let mut reader = BufReader::new(stream);
        loop {
            let request = match read_request(&mut reader, self.config.max_body_bytes) {
                Ok(r) => r,
                Err(ReadError::Closed) => return,
                Err(ReadError::Io(_)) => return,
                Err(ReadError::Malformed(m)) => {
                    let _ = Response::error(400, &m).write_to(&mut writer, false);
                    return;
                }
                Err(ReadError::TooLarge) => {
                    let _ = Response::error(413, "request body too large")
                        .write_to(&mut writer, false);
                    return;
                }
            };
            let close = request.wants_close();
            let t0 = Instant::now();
            let response = self.route(&request);
            if pka_obs::enabled() {
                pka_obs::counter("server.requests").incr();
                pka_obs::histogram("server.request_ns", REQUEST_EDGES)
                    .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                if response.status >= 400 {
                    pka_obs::counter("server.http_errors").incr();
                }
            }
            if response.write_to(&mut writer, !close).is_err() {
                return;
            }
            let _ = writer.flush();
            if close {
                return;
            }
        }
    }

    /// Dispatches one request.
    fn route(&self, req: &Request) -> Response {
        let path = req.path.trim_end_matches('/');
        match (req.method.as_str(), path) {
            ("GET", "/healthz") => Response::json(200, &json!({ "ok": true })),
            ("POST", "/v1/shutdown") => {
                // Respond first-come; the wake connection unblocks accept.
                self.request_stop();
                Response::json(200, &json!({ "ok": true }))
            }
            ("POST", "/v1/sessions") => self.create_session(req),
            ("GET", "/v1/sessions") => {
                Response::json(200, &json!({ "sessions": self.registry.list() }))
            }
            _ => {
                if let Some(rest) = path.strip_prefix("/v1/sessions/") {
                    return self.session_route(req, rest);
                }
                Response::error(404, "no such route")
            }
        }
    }

    fn create_session(&self, req: &Request) -> Response {
        let body = match req.body_text() {
            Ok(t) => t,
            Err(_) => return Response::error(400, "request body is not UTF-8"),
        };
        let spec: Value = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("invalid session spec: {e}")),
        };
        match self.registry.create(&spec) {
            Ok(session) => Response::json(
                200,
                &json!({
                    "id": session.cell.id,
                    "mode": session.mode,
                    "source": session.source,
                }),
            ),
            Err((status, message)) => Response::error(status, &message),
        }
    }

    fn session_route(&self, req: &Request, rest: &str) -> Response {
        let (id, action) = match rest.split_once('/') {
            Some((id, action)) => (id, Some(action)),
            None => (rest, None),
        };
        let Some(session) = self.registry.get(id) else {
            return Response::error(404, &format!("no session `{id}`"));
        };
        match (req.method.as_str(), action) {
            ("GET", None) => Response::json(200, &session.describe()),
            ("DELETE", None) => match self.registry.teardown(id) {
                Some(summary) => Response::json(200, &summary),
                None => Response::error(404, &format!("no session `{id}`")),
            },
            ("POST", Some("records")) => self.append_records(req, &session),
            ("POST", Some("finish")) => match &session.feed {
                Some(feed) => {
                    feed.finish();
                    Response::json(200, &json!({ "ok": true }))
                }
                None => Response::error(409, "session is not feed-backed"),
            },
            ("GET", Some("progress")) => {
                let st = session.cell.state.lock().expect("session state");
                let mut body = String::new();
                body.push_str("{\"schema\":\"pka.snapshot/v1\",\"type\":\"header\"}\n");
                for line in &st.progress {
                    body.push_str(line);
                    body.push('\n');
                }
                drop(st);
                Response::raw(200, "application/x-ndjson", body)
            }
            ("GET", Some("result")) => {
                let st = session.cell.state.lock().expect("session state");
                match st.status() {
                    Status::Done => {
                        let result = st.result.clone().unwrap_or(Value::Null);
                        Response::json(200, &result)
                    }
                    Status::Failed => {
                        let msg = st.error.clone().unwrap_or_else(|| "failed".into());
                        Response::json(
                            409,
                            &json!({ "status": "failed", "error": msg }),
                        )
                    }
                    Status::Cancelled => {
                        Response::json(409, &json!({ "status": "cancelled" }))
                    }
                    s => Response::json(202, &json!({ "status": s.as_str() })),
                }
            }
            ("GET", Some("checkpoint")) => {
                let st = session.cell.state.lock().expect("session state");
                let bytes = st
                    .final_checkpoint
                    .clone()
                    .or_else(|| st.last_checkpoint.clone());
                match bytes {
                    Some(b) => Response::raw(200, "application/json", b),
                    None => Response::error(404, "no checkpoint yet"),
                }
            }
            ("GET", Some("attribution")) => {
                let st = session.cell.state.lock().expect("session state");
                match st.attribution.clone() {
                    Some(b) => Response::raw(200, "application/json", b),
                    None => Response::error(404, "no attribution yet"),
                }
            }
            _ => Response::error(405, "unsupported session operation"),
        }
    }

    fn append_records(&self, req: &Request, session: &Session) -> Response {
        let Some(feed) = &session.feed else {
            return Response::error(409, "session is not feed-backed");
        };
        if session
            .cell
            .state
            .lock()
            .expect("session state")
            .status()
            .is_terminal()
        {
            return Response::error(409, "session already finished");
        }
        let text = match req.body_text() {
            Ok(t) => t,
            Err(_) => return Response::error(400, "request body is not UTF-8"),
        };
        match feed.push_lines(text) {
            Ok(accepted) => Response::json(
                200,
                &json!({ "accepted": accepted, "buffered": feed.buffered() as u64 }),
            ),
            Err(e) => Response::error(409, &e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Read};

    fn send(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            reader.read_line(&mut h).expect("header");
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf8"))
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        send(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        send(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let server = PkaServer::bind(ServerConfig::default()).expect("bind");
        let addr = server.addr().expect("addr");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run().expect("run"));
            let (status, body) = get(addr, "/healthz");
            assert_eq!(status, 200);
            assert!(body.contains("\"ok\":true"), "{body}");
            let (status, _) = get(addr, "/nope");
            assert_eq!(status, 404);
            let (status, _) = get(addr, "/v1/sessions/s99");
            assert_eq!(status, 404);
            let (status, _) = post(addr, "/v1/shutdown", "");
            assert_eq!(status, 200);
            handle.join().expect("server thread");
        });
    }

    #[test]
    fn bad_spec_is_rejected_synchronously() {
        let server = PkaServer::bind(ServerConfig::default()).expect("bind");
        let addr = server.addr().expect("addr");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run().expect("run"));
            let (status, body) = post(addr, "/v1/sessions", "{\"mode\":\"nope\"}");
            assert_eq!(status, 400, "{body}");
            let (status, body) =
                post(addr, "/v1/sessions", "{\"source\":\"synthetic:0\"}");
            assert_eq!(status, 400, "{body}");
            let (status, _) = post(addr, "/v1/shutdown", "");
            assert_eq!(status, 200);
            handle.join().expect("server thread");
        });
    }
}
