//! From-scratch machine-learning substrate for Principal Kernel Analysis.
//!
//! The PKA paper leans on a handful of classic algorithms: PCA + K-Means for
//! *Principal Kernel Selection*, three lightweight classifiers (stochastic
//! gradient descent, Gaussian naive Bayes, multilayer perceptron) for the
//! two-level profiling mapping, and agglomerative hierarchical clustering for
//! the TBPoint baseline. None of those exist in the allowed dependency set,
//! so this crate implements them directly:
//!
//! * [`Matrix`] — a small dense row-major matrix.
//! * [`StandardScaler`] — per-feature standardisation (fit/transform).
//! * [`Pca`] — principal component analysis via a symmetric Jacobi
//!   eigensolver.
//! * [`KMeans`] — Lloyd's algorithm with k-means++ seeding.
//! * [`Agglomerative`] — average-linkage hierarchical clustering (quadratic
//!   memory, deliberately: the paper's point is that this does not scale).
//! * [`classify`] — [`SgdClassifier`](classify::SgdClassifier),
//!   [`GaussianNb`](classify::GaussianNb) and
//!   [`MlpClassifier`](classify::MlpClassifier) behind one
//!   [`Classifier`](classify::Classifier) trait, plus a majority-vote
//!   [`Ensemble`](classify::Ensemble).
//!
//! All algorithms are deterministic: anything stochastic takes an explicit
//! seed.
//!
//! # Examples
//!
//! ```
//! use pka_ml::{KMeans, Matrix};
//!
//! let data = Matrix::from_rows(&[
//!     vec![0.0, 0.0],
//!     vec![0.1, 0.0],
//!     vec![9.0, 9.0],
//!     vec![9.1, 9.0],
//! ])?;
//! let fit = KMeans::new(2).with_seed(7).fit(&data)?;
//! assert_eq!(fit.labels()[0], fit.labels()[1]);
//! assert_ne!(fit.labels()[0], fit.labels()[2]);
//! # Ok::<(), pka_ml::MlError>(())
//! ```

// `deny` rather than `forbid`: the `simd` module carries the one audited
// `allow(unsafe_code)` in the crate, for CPU intrinsics behind runtime
// feature detection. Everything else still refuses unsafe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
mod eigen;
mod error;
mod hierarchical;
mod kmeans;
mod matrix;
mod pca;
mod quality;
mod scaler;
pub mod simd;

pub use error::MlError;
pub use hierarchical::{Agglomerative, Dendrogram, Linkage};
pub use kmeans::{KMeans, KMeansFit};
pub use matrix::Matrix;
pub use pca::{Pca, PcaFit};
pub use quality::{davies_bouldin_index, silhouette_score};
pub use scaler::StandardScaler;
