//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA needs the eigenpairs of a covariance matrix; the feature space is
//! small (12 metrics in Table 2 of the paper), where Jacobi is simple,
//! numerically robust and plenty fast.

use crate::{Matrix, MlError};

/// Result of a symmetric eigendecomposition: eigenvalues in descending
/// order with matching eigenvectors (columns of an orthogonal matrix,
/// returned as rows here for convenient iteration).
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// `vectors[i]` is the unit eigenvector paired with `values[i]`.
    pub vectors: Vec<Vec<f64>>,
}

const MAX_SWEEPS: usize = 100;
const TOLERANCE: f64 = 1e-12;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// # Errors
///
/// * [`MlError::DimensionMismatch`] if the matrix is not square.
/// * [`MlError::EmptyInput`] if the matrix is 0×0.
/// * [`MlError::DidNotConverge`] if the off-diagonal mass does not vanish
///   within the sweep budget (does not happen for well-formed symmetric
///   input).
pub fn jacobi_eigen(m: &Matrix) -> Result<EigenDecomposition, MlError> {
    let n = m.rows();
    if n == 0 {
        return Err(MlError::EmptyInput);
    }
    if m.cols() != n {
        return Err(MlError::DimensionMismatch {
            expected: n,
            actual: m.cols(),
        });
    }

    // Working copy of the matrix and accumulated rotations.
    let mut a: Vec<Vec<f64>> = (0..n).map(|i| m.row(i).to_vec()).collect();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();

    // The scale of the problem, for a relative convergence criterion.
    let scale: f64 = a
        .iter()
        .flat_map(|r| r.iter().map(|x| x * x))
        .sum::<f64>()
        .sqrt()
        .max(f64::MIN_POSITIVE);

    let mut converged = false;
    for _ in 0..MAX_SWEEPS {
        let off: f64 = (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .map(|(i, j)| a[i][j] * a[i][j])
            .sum::<f64>()
            .sqrt();
        if off <= TOLERANCE * scale {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a[p][q];
                if apq.abs() <= TOLERANCE * scale / (n * n) as f64 {
                    continue;
                }
                let app = a[p][p];
                let aqq = a[q][q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for row in a.iter_mut() {
                    let akp = row[p];
                    let akq = row[q];
                    row[p] = c * akp - s * akq;
                    row[q] = s * akp + c * akq;
                }
#[allow(clippy::needless_range_loop)] // rows p and q alias; iter_mut cannot express this
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for vk in v.iter_mut() {
                    let vp = vk[p];
                    let vq = vk[q];
                    vk[p] = c * vp - s * vq;
                    vk[q] = s * vp + c * vq;
                }
            }
        }
    }
    if !converged {
        // One final check: the loop may have exhausted sweeps exactly at
        // convergence.
        let off: f64 = (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .map(|(i, j)| a[i][j] * a[i][j])
            .sum::<f64>()
            .sqrt();
        if off > TOLERANCE * scale {
            return Err(MlError::DidNotConverge {
                algorithm: "jacobi eigendecomposition",
                max_iterations: MAX_SWEEPS,
            });
        }
    }

    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|i| (a[i][i], (0..n).map(|k| v[k][i]).collect()))
        .collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("eigenvalues are finite"));

    Ok(EigenDecomposition {
        values: pairs.iter().map(|p| p.0).collect(),
        vectors: pairs.into_iter().map(|p| p.1).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let m = mat(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = jacobi_eigen(&m).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = mat(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_eigen(&m).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v = &e.vectors[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] - v[1]).abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = mat(&[
            &[4.0, 1.0, 0.5, -0.2],
            &[1.0, 3.0, 0.7, 0.1],
            &[0.5, 0.7, 2.0, 0.3],
            &[-0.2, 0.1, 0.3, 1.0],
        ]);
        let e = jacobi_eigen(&m).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = e.vectors[i]
                    .iter()
                    .zip(&e.vectors[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9, "({i},{j}) dot={dot}");
            }
        }
    }

    #[test]
    fn reconstruction_satisfies_av_eq_lambda_v() {
        let m = mat(&[&[5.0, 2.0, 1.0], &[2.0, 4.0, -1.0], &[1.0, -1.0, 3.0]]);
        let e = jacobi_eigen(&m).unwrap();
        for (lambda, vec) in e.values.iter().zip(&e.vectors) {
            for i in 0..3 {
                let av: f64 = (0..3).map(|j| m.get(i, j) * vec[j]).sum();
                assert!((av - lambda * vec[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let m = mat(&[&[1.0, 0.3], &[0.3, 2.0]]);
        let e = jacobi_eigen(&m).unwrap();
        assert!((e.values.iter().sum::<f64>() - 3.0).abs() < 1e-10);
    }

    #[test]
    fn non_square_rejected() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(
            jacobi_eigen(&m),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn one_by_one() {
        let m = mat(&[&[7.0]]);
        let e = jacobi_eigen(&m).unwrap();
        assert_eq!(e.values, vec![7.0]);
        assert_eq!(e.vectors, vec![vec![1.0]]);
    }

    #[test]
    fn zero_matrix() {
        let m = Matrix::zeros(3, 3);
        let e = jacobi_eigen(&m).unwrap();
        assert!(e.values.iter().all(|&v| v.abs() < 1e-12));
    }
}
