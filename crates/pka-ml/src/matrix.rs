use crate::MlError;

/// A dense, row-major `f64` matrix.
///
/// This is deliberately minimal: just what PCA, K-Means and the classifiers
/// need (construction, indexed access, row iteration, and the covariance
/// product). It is a data structure in the Serde sense, but stays
/// dependency-free because only the experiment harness serialises anything.
///
/// # Examples
///
/// ```
/// use pka_ml::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 2);
/// assert_eq!(m.get(1, 0), 3.0);
/// # Ok::<(), pka_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MlError> {
        if data.len() != rows * cols {
            return Err(MlError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyInput`] if there are no rows or the rows are
    /// empty, and [`MlError::DimensionMismatch`] if rows have differing
    /// lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MlError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(MlError::EmptyInput);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(MlError::DimensionMismatch {
                    expected: cols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows (samples).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterator over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Per-column arithmetic means.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for row in self.iter_rows() {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Sample covariance matrix of the columns (divides by `n - 1`; by `1`
    /// when there is a single row).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyInput`] if the matrix has no rows.
    pub fn covariance(&self) -> Result<Matrix, MlError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(MlError::EmptyInput);
        }
        let means = self.column_means();
        let denom = if self.rows > 1 {
            (self.rows - 1) as f64
        } else {
            1.0
        };
        let mut cov = Matrix::zeros(self.cols, self.cols);
        for row in self.iter_rows() {
            for i in 0..self.cols {
                let di = row[i] - means[i];
                for j in i..self.cols {
                    let dj = row[j] - means[j];
                    cov.data[i * self.cols + j] += di * dj;
                }
            }
        }
        for i in 0..self.cols {
            for j in i..self.cols {
                let v = cov.data[i * self.cols + j] / denom;
                cov.data[i * self.cols + j] = v;
                cov.data[j * self.cols + i] = v;
            }
        }
        Ok(cov)
    }

    /// Squared Euclidean distance between two rows of (possibly different)
    /// matrices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "points must share dimensionality");
        Self::sq_dist_hot(a, b)
    }

    /// Squared Euclidean distance, hot-path variant: the dimensionality
    /// check runs only in debug builds.
    ///
    /// [`sq_dist`](Self::sq_dist) asserts slice lengths on every call,
    /// which is measurable in the innermost clustering loops; callers that
    /// have validated shapes once at setup (K-Means assignment, the
    /// quality diagnostics) use this variant instead. The arithmetic is
    /// identical — same operations in the same order — so the two return
    /// bitwise-equal results.
    #[inline]
    pub fn sq_dist_hot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "points must share dimensionality");
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Squared Euclidean norm of a point.
    ///
    /// Cached norms price the reverse-triangle-inequality lower bound
    /// `(‖x‖ − ‖c‖)² ≤ ‖x − c‖²` that lets K-Means skip exact distance
    /// work.
    #[inline]
    pub fn sq_norm(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validates() {
        assert_eq!(Matrix::from_rows(&[]), Err(MlError::EmptyInput));
        assert_eq!(Matrix::from_rows(&[vec![]]), Err(MlError::EmptyInput));
        assert!(matches!(
            Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_vec_validates() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![0.0; 3]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn indexing_round_trips() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::zeros(1, 1);
        let _ = m.get(0, 1);
    }

    #[test]
    fn column_means() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]).unwrap();
        assert_eq!(m.column_means(), vec![2.0, 20.0]);
    }

    #[test]
    fn covariance_matches_hand_computation() {
        // Two perfectly correlated columns.
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let c = m.covariance().unwrap();
        assert!((c.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((c.get(0, 1) - 2.0).abs() < 1e-12);
        assert!((c.get(1, 0) - 2.0).abs() < 1e-12);
        assert!((c.get(1, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_is_symmetric() {
        let m = Matrix::from_rows(&[
            vec![1.0, 5.0, -2.0],
            vec![0.5, 2.0, 7.0],
            vec![-3.0, 1.0, 0.0],
            vec![4.0, -1.0, 2.5],
        ])
        .unwrap();
        let c = m.covariance().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.get(i, j), c.get(j, i));
            }
        }
    }

    #[test]
    fn sq_dist_basics() {
        assert_eq!(Matrix::sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(Matrix::sq_dist(&[], &[]), 0.0);
    }

    #[test]
    fn sq_dist_hot_matches_checked_variant_bitwise() {
        let a = [0.3, -1.7, 2.5000001, 9e100];
        let b = [1.1, 0.0, -2.5, -9e100];
        assert_eq!(
            Matrix::sq_dist(&a, &b).to_bits(),
            Matrix::sq_dist_hot(&a, &b).to_bits()
        );
    }

    #[test]
    fn sq_norm_is_distance_to_origin() {
        let v = [3.0, 4.0];
        assert_eq!(Matrix::sq_norm(&v), 25.0);
        assert_eq!(
            Matrix::sq_norm(&v).to_bits(),
            Matrix::sq_dist(&v, &[0.0, 0.0]).to_bits()
        );
        assert_eq!(Matrix::sq_norm(&[]), 0.0);
    }
}
