use pka_stats::hash::UnitStream;
use pka_stats::Executor;

use crate::simd::{self, SimdTier};
use crate::{Matrix, MlError};

/// Rows per assignment chunk. Fixed — never derived from the worker count —
/// so the chunk grid, and therefore every fold over per-chunk results, is
/// identical for any [`Executor`].
const ASSIGN_CHUNK: usize = 2048;

/// Relative safety margin applied every time a Hamerly bound is updated.
///
/// Every floating-point operation on the bounds errs by ≲ 2⁻⁵³ relative;
/// inflating upper bounds (and deflating lower bounds) by `1e-9` per update
/// keeps them conservative for millions of Lloyd iterations — far beyond
/// any budget — while costing essentially no pruning power, because real
/// cluster margins dwarf one part in a billion. Conservative bounds are
/// what make the pruned path *provably* bitwise identical to the exhaustive
/// reference: a point is only skipped when its assigned centroid is
/// strictly closest.
pub(crate) const BOUND_PAD: f64 = 1e-9;

#[inline]
fn pad_up(x: f64) -> f64 {
    x * (1.0 + BOUND_PAD)
}

#[inline]
fn pad_down(x: f64) -> f64 {
    x * (1.0 - BOUND_PAD)
}

/// Conservative lower bound on `‖x − c‖²` from the two Euclidean norms:
/// the reverse triangle inequality gives `(‖x‖ − ‖c‖)² ≤ ‖x − c‖²`.
/// Padded downward so accumulated rounding can never push the computed
/// bound above the true squared distance — pruning with it stays exact.
#[inline]
pub(crate) fn norm_lower_bound(nx: f64, nc: f64) -> f64 {
    let m = (nx - nc).abs() - (nx + nc) * 1e-12;
    if m > 0.0 {
        (m * m) * (1.0 - 1e-12)
    } else {
        0.0
    }
}

/// K-Means clustering (Lloyd's algorithm with k-means++ seeding).
///
/// *Principal Kernel Selection* sweeps `K` from 1 to 20 over the
/// PCA-projected kernel metrics; the paper picks K-Means over hierarchical
/// clustering explicitly because it scales to the millions of kernels in
/// MLPerf workloads (Section 3.1) — Lloyd's algorithm is `O(n · k · d)` per
/// iteration and needs only `O(k · d)` extra memory, versus the `O(n²)`
/// distance matrix agglomerative methods require.
///
/// The assignment step is *bounded* (Hamerly-style): each point carries an
/// upper bound on the distance to its assigned centroid and a lower bound
/// on the distance to every other centroid, maintained across iterations
/// from cached centroid drifts. Points whose bounds prove the assignment
/// cannot change skip all distance work — on clustered data that is the
/// vast majority after the first few iterations. Bounds are padded
/// conservatively (see [`BOUND_PAD`]), so the fitted labels, centroids and
/// inertia are **bitwise identical** to the exhaustive reference
/// implementation ([`fit_reference`](KMeans::fit_reference) — the parity
/// suite asserts whole-struct equality), and identical for every worker
/// count of the configured [`Executor`].
///
/// Deterministic: seeding uses an internal splitmix64 stream derived from
/// [`with_seed`](KMeans::with_seed) (default 0).
///
/// # Examples
///
/// ```
/// use pka_ml::{KMeans, Matrix};
///
/// let data = Matrix::from_rows(&[
///     vec![0.0], vec![0.2], vec![10.0], vec![10.2], vec![20.0],
/// ])?;
/// let fit = KMeans::new(3).fit(&data)?;
/// assert_eq!(fit.centroids().len(), 3);
/// assert!(fit.inertia() < 0.1);
/// # Ok::<(), pka_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeans {
    k: usize,
    max_iterations: usize,
    seed: u64,
    exec: Executor,
}

impl KMeans {
    /// Configures K-Means with `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            seed: 0,
            exec: Executor::sequential(),
        }
    }

    /// Sets the RNG seed used by k-means++ initialisation.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Lloyd-iteration budget (default 100).
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Fans the assignment step out over `exec` in fixed-size row chunks.
    ///
    /// Per-point assignment work is independent given the centroids, and
    /// the chunk grid never depends on the worker count, so the fit is
    /// bitwise identical for any `exec` — including the sequential default.
    /// The update step (centroid means) always folds sequentially in row
    /// order to preserve the reference summation order exactly.
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// Fits every configuration in `configs` against the same data — the
    /// PKS K-sweep's shape — fanning the independent runs out over `exec`.
    ///
    /// Each configuration carries its own seed, so the runs share no RNG
    /// state and the result vector (in `configs` order) is identical for
    /// any worker count. Configurations normally keep their own executor
    /// sequential here: nesting a parallel inner executor under this outer
    /// fan-out multiplies thread counts without changing any result.
    ///
    /// # Errors
    ///
    /// Returns the first (by `configs` index) error produced by
    /// [`KMeans::fit`].
    pub fn fit_batch(
        configs: &[KMeans],
        data: &Matrix,
        exec: &Executor,
    ) -> Result<Vec<KMeansFit>, MlError> {
        exec.try_map(configs, |_, config| config.fit(data))
    }

    /// Clusters the rows of `data`.
    ///
    /// If `k` exceeds the number of distinct points, surplus clusters end up
    /// empty and are re-seeded onto the points currently farthest from their
    /// centroid; if there are genuinely fewer distinct points than `k`, some
    /// centroids will coincide, which is harmless for PKS (the duplicate
    /// groups are simply empty or tiny).
    ///
    /// # Errors
    ///
    /// * [`MlError::InvalidParameter`] if `k` is zero.
    /// * [`MlError::EmptyInput`] if `data` has no rows.
    pub fn fit(&self, data: &Matrix) -> Result<KMeansFit, MlError> {
        let _span = pka_obs::span("kmeans.fit");
        self.validate(data)?;
        let n = data.rows();
        let d = data.cols();
        let k = self.k.min(n);
        let tier = simd::active_tier();
        let mut rng = UnitStream::new(self.seed ^ 0x9e3779b97f4a7c15);

        let point_norms: Vec<f64> = data
            .iter_rows()
            .map(|row| Matrix::sq_norm(row).sqrt())
            .collect();
        let mut init = plus_plus_init(data, k, &mut rng, &point_norms, tier);
        // The interleaved mirror the SIMD scan reads; rebuilt after every
        // between-round centroid mutation, below.
        init.rebuild_inter(tier);
        // Everything the assignment workers read lives behind one RwLock:
        // workers hold read locks only while a round is in flight, the
        // driver below write-locks only between rounds, so the lock is
        // never contended — it exists to let the fixed worker closure of
        // [`Executor::rounds`] observe the driver's between-round mutations.
        let state = std::sync::RwLock::new(AssignState {
            centroids: init,
            labels: vec![0usize; n],
            // Hamerly bounds: `upper[i]` ≥ dist(point i, its centroid),
            // `lower[i]` ≤ dist(point i, every *other* centroid). The
            // initial values force a full scan on the first pass.
            upper: vec![f64::INFINITY; n],
            lower: vec![f64::NEG_INFINITY; n],
            snap_upper: vec![0.0f64; n],
            snap_lower: vec![0.0f64; n],
            cum_drift: vec![0.0f64; k],
            cum_excl: vec![0.0f64; k],
            cum_max: 0.0,
            s_half: vec![0.0f64; k],
        });

        let mut old = vec![0.0f64; k * d];
        // Per-cluster running sums and member counts persist across
        // iterations: a cluster whose membership did not change keeps — by
        // construction, bitwise — the row-order fold the reference would
        // recompute, so only "dirty" clusters are re-summed.
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0usize; k];
        let mut dirty = vec![true; k];
        // Row-ordered membership lists let the update step fold only the
        // points of dirty clusters instead of re-scanning every row. The
        // lists are maintained from the same splice that marks clusters
        // dirty: arrivals queue in `incoming`, departures are dropped at
        // the next fold by a label check, so the merge below visits
        // exactly the rows the full scan would have summed, in the same
        // ascending order — the fold stays bitwise identical.
        let track_members = u32::try_from(n).is_ok();
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut incoming: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut merged: Vec<u32> = Vec::new();
        let mut members_built = false;

        let fit = self.exec.rounds(
            n,
            ASSIGN_CHUNK,
            |_, range| {
                let st = state.read().expect("assignment state lock");
                assign_chunk(data, &st, range)
            },
            |run| {
                let mut obs_iterations = 0u64;
                let mut obs_reseeds = 0u64;
                for _ in 0..self.max_iterations {
                    obs_iterations += 1;
                    // Assignment round: chunk-parallel, order-preserving.
                    // Chunks return sparse per-point updates (pruned points
                    // stay put).
                    let chunk_results = run();
                    let mut guard = state.write().expect("assignment state lock");
                    let st = &mut *guard;
                    let mut changed = false;
                    for updates in chunk_results {
                        for u in updates {
                            let i = u.index;
                            if st.labels[i] != u.label {
                                dirty[st.labels[i]] = true;
                                dirty[u.label] = true;
                                st.labels[i] = u.label;
                                changed = true;
                                if track_members {
                                    incoming[u.label].push(i as u32);
                                }
                            }
                            st.upper[i] = u.upper;
                            st.lower[i] = u.lower;
                            st.snap_upper[i] = st.cum_drift[u.label];
                            st.snap_lower[i] = st.cum_excl[u.label];
                        }
                    }

                    // Update step: sequential row-order folds over dirty
                    // clusters, so centroid sums carry the exact rounding of
                    // the reference implementation.
                    old.copy_from_slice(&st.centroids.data);
                    if track_members && members_built {
                        // Merge each dirty cluster's standing members with
                        // this round's arrivals, dropping rows whose label
                        // moved on; both lists are ascending, so the fold
                        // order equals the full scan's.
                        for c in 0..k {
                            if !dirty[c] {
                                continue;
                            }
                            incoming[c].sort_unstable();
                            merged.clear();
                            let sum = &mut sums[c * d..(c + 1) * d];
                            sum.fill(0.0);
                            let (old_list, inc) = (&members[c], &incoming[c]);
                            let (mut a, mut b) = (0usize, 0usize);
                            loop {
                                let next = match (old_list.get(a), inc.get(b)) {
                                    (Some(&x), Some(&y)) if x < y => {
                                        a += 1;
                                        x
                                    }
                                    (Some(_), Some(&y)) => {
                                        b += 1;
                                        y
                                    }
                                    (Some(&x), None) => {
                                        a += 1;
                                        x
                                    }
                                    (None, Some(&y)) => {
                                        b += 1;
                                        y
                                    }
                                    (None, None) => break,
                                };
                                let i = next as usize;
                                if st.labels[i] != c {
                                    continue;
                                }
                                merged.push(next);
                                for (s, &x) in sum.iter_mut().zip(data.row(i)) {
                                    *s += x;
                                }
                            }
                            counts[c] = merged.len();
                            std::mem::swap(&mut members[c], &mut merged);
                            incoming[c].clear();
                        }
                    } else if dirty.iter().any(|&f| f) {
                        for c in 0..k {
                            if dirty[c] {
                                sums[c * d..(c + 1) * d].fill(0.0);
                                counts[c] = 0;
                            }
                            if track_members {
                                members[c].clear();
                                incoming[c].clear();
                            }
                        }
                        for (i, row) in data.iter_rows().enumerate() {
                            let c = st.labels[i];
                            if track_members {
                                members[c].push(i as u32);
                            }
                            if dirty[c] {
                                counts[c] += 1;
                                for (s, &x) in sums[c * d..(c + 1) * d].iter_mut().zip(row) {
                                    *s += x;
                                }
                            }
                        }
                        members_built = track_members;
                    }
                    let mut reseeds: Vec<(usize, usize)> = Vec::new();
                    for c in 0..k {
                        if counts[c] == 0 {
                            // Re-seed the empty cluster on the point
                            // farthest from its current centroid. Distances
                            // are computed once per reseed (not twice per
                            // comparison) against the same mixed old/new
                            // centroid state the sequential update loop
                            // exposes at this index.
                            let dist: Vec<f64> = data
                                .iter_rows()
                                .enumerate()
                                .map(|(i, row)| {
                                    Matrix::sq_dist_hot(row, st.centroids.row(st.labels[i]))
                                })
                                .collect();
                            let far = (0..n)
                                .max_by(|&a, &b| {
                                    dist[a].partial_cmp(&dist[b]).expect("distances are finite")
                                })
                                .expect("data is non-empty");
                            st.centroids.overwrite(c, data.row(far));
                            reseeds.push((st.labels[far], c));
                            st.labels[far] = c;
                            if track_members {
                                // Queue the adoptee for the next round's
                                // fold; its old list drops it by label check.
                                incoming[c].push(far as u32);
                            }
                            // The reseeded point *is* its centroid:
                            // distance 0, and nothing below zero bounds the
                            // second-closest.
                            st.upper[far] = 0.0;
                            st.lower[far] = 0.0;
                            st.snap_upper[far] = st.cum_drift[c];
                            st.snap_lower[far] = st.cum_excl[c];
                            changed = true;
                        } else if dirty[c] {
                            let row = st.centroids.row_mut(c);
                            for (j, &s) in sums[c * d..(c + 1) * d].iter().enumerate() {
                                row[j] = s / counts[c] as f64;
                            }
                            st.centroids.refresh_norm(c);
                        }
                    }
                    // Only reseed-induced membership changes carry into the
                    // next iteration's dirty set; assignment changes are
                    // folded in at splice time.
                    dirty.fill(false);
                    obs_reseeds += reseeds.len() as u64;
                    for (a, b) in reseeds {
                        dirty[a] = true;
                        dirty[b] = true;
                    }

                    if !changed {
                        break;
                    }

                    // Accumulate how far each centroid travelled (applied
                    // lazily to the bounds at the next assignment) and
                    // refresh the half-distance to each centroid's nearest
                    // neighbour for the `s_half` test.
                    let mut max_drift = 0.0f64;
                    let mut second_drift = 0.0f64;
                    let mut argmax = 0usize;
                    for c in 0..k {
                        let drift = pad_up(
                            Matrix::sq_dist_hot(st.centroids.row(c), &old[c * d..(c + 1) * d])
                                .sqrt(),
                        );
                        st.cum_drift[c] += drift;
                        if drift > max_drift {
                            second_drift = max_drift;
                            max_drift = drift;
                            argmax = c;
                        } else if drift > second_drift {
                            second_drift = drift;
                        }
                    }
                    st.cum_max += max_drift;
                    // The fastest-moving centroid's own points exclude it
                    // from their lower-bound decay (it cannot be their
                    // second-closest *and* assigned), so they take the
                    // runner-up drift instead.
                    for (c, ce) in st.cum_excl.iter_mut().enumerate() {
                        *ce += if c == argmax { second_drift } else { max_drift };
                    }
                    for c in 0..k {
                        let mut min_sq = f64::INFINITY;
                        for c2 in 0..k {
                            if c2 != c {
                                let sq = Matrix::sq_dist_hot(
                                    st.centroids.row(c),
                                    st.centroids.row(c2),
                                );
                                if sq < min_sq {
                                    min_sq = sq;
                                }
                            }
                        }
                        st.s_half[c] = if min_sq.is_finite() {
                            pad_down(0.5 * min_sq.sqrt())
                        } else {
                            // k = 1: no other centroid exists, every point
                            // prunes.
                            f64::INFINITY
                        };
                    }
                    // All centroid mutations for this iteration are done;
                    // refresh the mirror the next round's scans will read.
                    st.centroids.rebuild_inter(tier);
                }

                if pka_obs::enabled() {
                    let obs = obs_counters();
                    obs.fits.incr();
                    obs.reseeds.add(obs_reseeds);
                    obs.iterations.record(obs_iterations);
                }

                let st = state.read().expect("assignment state lock");
                // Reporting-grade pass: honours `--fast-math`, exact by
                // default.
                let inertia = data
                    .iter_rows()
                    .enumerate()
                    .map(|(i, row)| simd::sq_dist_auto(row, st.centroids.row(st.labels[i])))
                    .sum();

                KMeansFit {
                    centroids: (0..k).map(|c| st.centroids.row(c).to_vec()).collect(),
                    labels: st.labels.clone(),
                    inertia,
                }
            },
        );
        Ok(fit)
    }

    /// The exhaustive reference implementation: plain Lloyd's, every point
    /// scanning every centroid every iteration.
    ///
    /// This is the parity oracle for [`fit`](KMeans::fit) — the bounded
    /// path must return a bitwise-identical [`KMeansFit`] (the root
    /// `kmeans_parity` suite asserts it across seeds × shapes × worker
    /// counts) — and the baseline the `kmeans_sweep` benchmark measures
    /// speedups against. It always runs sequentially and ignores the
    /// configured executor. Not part of the supported API.
    ///
    /// # Errors
    ///
    /// Same as [`fit`](KMeans::fit).
    #[doc(hidden)]
    pub fn fit_reference(&self, data: &Matrix) -> Result<KMeansFit, MlError> {
        self.validate(data)?;
        let n = data.rows();
        let k = self.k.min(n);
        let mut rng = UnitStream::new(self.seed ^ 0x9e3779b97f4a7c15);

        let mut centroids = plus_plus_init_reference(data, k, &mut rng);
        let mut labels = vec![0usize; n];

        for _ in 0..self.max_iterations {
            // Assignment step.
            let mut changed = false;
            for (i, row) in data.iter_rows().enumerate() {
                let best = nearest(row, &centroids).0;
                if labels[i] != best {
                    labels[i] = best;
                    changed = true;
                }
            }

            // Update step.
            let mut sums = vec![vec![0.0; data.cols()]; k];
            let mut counts = vec![0usize; k];
            for (i, row) in data.iter_rows().enumerate() {
                counts[labels[i]] += 1;
                for (s, &x) in sums[labels[i]].iter_mut().zip(row) {
                    *s += x;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster on the point farthest from its
                    // current centroid; distances are computed once, not per
                    // comparison.
                    let dist: Vec<f64> = data
                        .iter_rows()
                        .enumerate()
                        .map(|(i, row)| Matrix::sq_dist(row, &centroids[labels[i]]))
                        .collect();
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            dist[a].partial_cmp(&dist[b]).expect("distances are finite")
                        })
                        .expect("data is non-empty");
                    centroids[c] = data.row(far).to_vec();
                    labels[far] = c;
                    changed = true;
                } else {
                    for (j, s) in sums[c].iter().enumerate() {
                        centroids[c][j] = s / counts[c] as f64;
                    }
                }
            }

            if !changed {
                break;
            }
        }

        let inertia = data
            .iter_rows()
            .enumerate()
            .map(|(i, row)| Matrix::sq_dist(row, &centroids[labels[i]]))
            .sum();

        Ok(KMeansFit {
            centroids,
            labels,
            inertia,
        })
    }

    fn validate(&self, data: &Matrix) -> Result<(), MlError> {
        if self.k == 0 {
            return Err(MlError::InvalidParameter {
                name: "k",
                message: "must be at least 1".into(),
            });
        }
        if data.rows() == 0 || data.cols() == 0 {
            return Err(MlError::EmptyInput);
        }
        Ok(())
    }
}

/// Flat row-major centroid block with cached Euclidean norms.
///
/// `Vec<Vec<f64>>` centroids cost a pointer chase per distance call; at
/// millions of points × K centroids per Lloyd iteration that indirection
/// dominates. This block keeps all centroids contiguous (`k × d`,
/// row-major, like [`Matrix`]) and caches each centroid's norm, which
/// prices the norm-difference pruning bound.
#[derive(Debug, Clone)]
struct Centroids {
    d: usize,
    data: Vec<f64>,
    /// Euclidean (not squared) norm per centroid.
    norms: Vec<f64>,
    /// Lane-interleaved mirror of `data` for the SIMD full scan; `None` on
    /// the scalar tier. Only valid between [`Centroids::rebuild_inter`] and
    /// the next mutation — the fit driver rebuilds it after every
    /// between-round update, so assignment rounds always read a current
    /// mirror.
    inter: Option<simd::InterleavedRows>,
}

impl Centroids {
    fn with_capacity(k: usize, d: usize) -> Self {
        Self {
            d,
            data: Vec::with_capacity(k * d),
            norms: Vec::with_capacity(k),
            inter: None,
        }
    }

    /// (Re)packs the interleaved mirror from the current rows; no-op on the
    /// scalar tier.
    fn rebuild_inter(&mut self, tier: SimdTier) {
        if tier == SimdTier::Scalar {
            return;
        }
        match &mut self.inter {
            Some(inter) => inter.rebuild(&self.data),
            None => self.inter = Some(simd::InterleavedRows::build(tier, &self.data, self.d)),
        }
    }

    fn k(&self) -> usize {
        self.norms.len()
    }

    fn row(&self, c: usize) -> &[f64] {
        &self.data[c * self.d..(c + 1) * self.d]
    }

    fn row_mut(&mut self, c: usize) -> &mut [f64] {
        &mut self.data[c * self.d..(c + 1) * self.d]
    }

    fn push(&mut self, row: &[f64]) {
        self.data.extend_from_slice(row);
        self.norms.push(Matrix::sq_norm(row).sqrt());
    }

    fn overwrite(&mut self, c: usize, row: &[f64]) {
        self.row_mut(c).copy_from_slice(row);
        self.norms[c] = Matrix::sq_norm(row).sqrt();
    }

    fn refresh_norm(&mut self, c: usize) {
        self.norms[c] = Matrix::sq_norm(self.row(c)).sqrt();
    }
}

/// A single point whose bounds (and possibly label) were refreshed by the
/// assignment step. Pruned points emit nothing.
struct PointUpdate {
    index: usize,
    label: usize,
    upper: f64,
    lower: f64,
}

/// Everything the assignment workers read, mutated by the driver strictly
/// between rounds (see [`KMeans::fit`]).
struct AssignState {
    centroids: Centroids,
    labels: Vec<usize>,
    upper: Vec<f64>,
    lower: Vec<f64>,
    snap_upper: Vec<f64>,
    snap_lower: Vec<f64>,
    /// Per-centroid accumulated padded drift, applied lazily to upper
    /// bounds at assignment time.
    cum_drift: Vec<f64>,
    /// Accumulated per-iteration maximum drift *over the other centroids*,
    /// indexed by a point's label and applied lazily to its lower bound —
    /// Hamerly's bound: the second-closest centroid is some `c ≠ label`, so
    /// the assigned centroid's own travel never loosens the lower bound.
    cum_excl: Vec<f64>,
    /// Accumulated per-iteration maximum drifts over *all* centroids; an
    /// upper envelope of every `cum_excl` entry, used to scale the
    /// reconstruction error padding.
    cum_max: f64,
    /// Half the distance from each centroid to its nearest other centroid,
    /// padded down (Hamerly's second pruning test).
    s_half: Vec<f64>,
}

/// Extra absolute padding, relative to the drift accumulators, covering the
/// floating-point error of reconstructing a bound from an accumulator
/// delta. Summation error over any realistic iteration budget is below
/// `1e-14` relative; `1e-12` leaves two orders of magnitude to spare.
pub(crate) const CUM_PAD: f64 = 1e-12;

/// The bounded assignment step over one row range.
///
/// Bounds are reconstructed lazily from the per-centroid drift
/// accumulators (see [`KMeans::fit`]); a point whose reconstructed bounds —
/// or Hamerly's `s_half` centroid-separation test — prove its assigned
/// centroid is still strictly closest is skipped without storing anything.
/// Otherwise its upper bound is tightened with one exact distance, and only
/// if that still fails does the point pay the full scan — whose comparison
/// sequence is identical to the reference [`nearest`], so any label it
/// produces matches the reference bit for bit.
fn assign_chunk(data: &Matrix, st: &AssignState, range: std::ops::Range<usize>) -> Vec<PointUpdate> {
    let range_len = range.len();
    // Full-scan fallbacks are tallied locally; together with `out.len()`
    // they classify every point in the chunk (prune / tighten / scan), so
    // the per-point loop itself carries no instrumentation at all.
    let mut scans = 0u64;
    let mut out = Vec::new();
    // Per-chunk distance scratch for the batch scan kernel (one slot per
    // centroid); allocated lazily on the first full scan.
    let mut scratch = Vec::new();
    // The bound reconstruction runs for *every* point *every* iteration —
    // once pruning works it dominates the sweep, so on a vector tier the
    // whole chunk goes through one [`simd::prune_survivors`] call (bitwise
    // equal to [`simd::reconstruct_bounds`] lane by lane); only surviving
    // points fall through to the scalar tighten/scan path.
    if let Some(tier) = st.centroids.inter.as_ref().map(simd::InterleavedRows::tier) {
        let hs = simd::HamerlySlices {
            upper: &st.upper[range.clone()],
            snap_upper: &st.snap_upper[range.clone()],
            lower: &st.lower[range.clone()],
            snap_lower: &st.snap_lower[range.clone()],
            labels: &st.labels[range.clone()],
            cum_drift: &st.cum_drift,
            cum_excl: &st.cum_excl,
            s_half: &st.s_half,
            cum_max: st.cum_max,
        };
        let mut survivors = Vec::new();
        simd::prune_survivors(tier, &hs, &mut survivors);
        // Survivors split into two batches: points whose tightened upper
        // bound passes after one exact distance, and points that need the
        // full scan — the latter go through the batched scan kernel, four
        // (AVX2) or two (SSE4.1) points per pass. Update order within the
        // chunk differs from the scalar path, but every update is
        // per-point state, so the splice result is identical.
        let mut pending: Vec<u32> = Vec::new();
        for s in survivors {
            let i = range.start + s.index as usize;
            let label = st.labels[i];
            let mut u = s.u;
            if s.l.is_finite() {
                u = pad_up(Matrix::sq_dist_hot(data.row(i), st.centroids.row(label)).sqrt());
            }
            if u < s.l || u < st.s_half[label] {
                out.push(PointUpdate {
                    index: i,
                    label,
                    upper: u,
                    lower: s.l,
                });
            } else {
                pending.push(i as u32);
            }
        }
        scans += pending.len() as u64;
        if !pending.is_empty() {
            let mut winners = Vec::with_capacity(pending.len());
            simd::scan_points(
                tier,
                data.as_slice(),
                data.cols(),
                &pending,
                &st.centroids.data,
                st.centroids.k(),
                &mut winners,
            );
            for (&i, &(best, best_d, second_d)) in pending.iter().zip(&winners) {
                out.push(PointUpdate {
                    index: i as usize,
                    label: best as usize,
                    upper: pad_up(best_d.sqrt()),
                    lower: pad_down(second_d.sqrt()),
                });
            }
        }
    } else {
        for i in range {
            let label = st.labels[i];
            let (u, l) = simd::reconstruct_bounds(
                st.upper[i],
                st.snap_upper[i],
                st.lower[i],
                st.snap_lower[i],
                st.cum_drift[label],
                st.cum_excl[label],
                st.cum_max,
            );
            if u < l || u < st.s_half[label] {
                continue;
            }
            assign_point(data, st, i, u, l, &mut out, &mut scratch, &mut scans);
        }
    }
    if pka_obs::enabled() {
        obs_counters().bound_prunes.add((range_len - out.len()) as u64);
        obs_counters().tighten_hits.add(out.len() as u64 - scans);
        obs_counters().full_scans.add(scans);
    }
    out
}

/// The tighten/scan path for one point whose reconstructed bounds `u` / `l`
/// failed the prune test — the scalar continuation shared by the blocked
/// and per-point reconstruction paths above.
#[allow(clippy::too_many_arguments)]
fn assign_point(
    data: &Matrix,
    st: &AssignState,
    i: usize,
    mut u: f64,
    mut l: f64,
    out: &mut Vec<PointUpdate>,
    scratch: &mut Vec<f64>,
    scans: &mut u64,
) {
    let label = st.labels[i];
    let row = data.row(i);
    let mut best = label;
    // Tighten the upper bound with one exact distance before paying
    // for the full scan — unless the point has never been scanned
    // (`l` still at its −∞ sentinel), where the scan is inevitable
    // and the tightening distance would be wasted.
    if l.is_finite() {
        u = pad_up(Matrix::sq_dist_hot(row, st.centroids.row(label)).sqrt());
    }
    if !(u < l || u < st.s_half[label]) {
        *scans += 1;
        let (winner, best_d, second_d) = scan(row, &st.centroids, scratch);
        best = winner;
        u = pad_up(best_d.sqrt());
        l = pad_down(second_d.sqrt());
    }
    out.push(PointUpdate {
        index: i,
        label: best,
        upper: u,
        lower: l,
    });
}

/// Cached hot-path counter handles, interned once per process.
struct KmeansObs {
    bound_prunes: &'static pka_obs::Counter,
    tighten_hits: &'static pka_obs::Counter,
    full_scans: &'static pka_obs::Counter,
    reseeds: &'static pka_obs::Counter,
    fits: &'static pka_obs::Counter,
    iterations: &'static pka_obs::Histogram,
}

fn obs_counters() -> &'static KmeansObs {
    static OBS: std::sync::OnceLock<KmeansObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| KmeansObs {
        bound_prunes: pka_obs::counter("kmeans.bound_prunes"),
        tighten_hits: pka_obs::counter("kmeans.tighten_hits"),
        full_scans: pka_obs::counter("kmeans.full_scans"),
        reseeds: pka_obs::counter("kmeans.reseeds"),
        fits: pka_obs::counter("kmeans.fits"),
        iterations: pka_obs::histogram("kmeans.iterations", &[1, 2, 4, 8, 16, 32, 64, 100]),
    })
}

/// Exhaustive scan over flat centroids: `(closest, its squared distance,
/// second-closest squared distance)`.
///
/// The comparison sequence — strict `<` against the running best, in
/// ascending centroid order — matches [`nearest`] exactly, so the winner is
/// always the reference winner. On a vector tier the distances come from
/// the batch kernel (`scratch` holds one slot per centroid), which is
/// bitwise equal to the per-row [`Matrix::sq_dist_hot`] calls it replaces;
/// the winner selection itself always runs the scalar comparison order.
fn scan(point: &[f64], centroids: &Centroids, scratch: &mut Vec<f64>) -> (usize, f64, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    let mut second_d = f64::INFINITY;
    if let Some(inter) = &centroids.inter {
        scratch.resize(centroids.k(), 0.0);
        simd::sq_dist_batch(point, inter, scratch);
        for (c, &d) in scratch.iter().enumerate() {
            if d < best_d {
                second_d = best_d;
                best_d = d;
                best = c;
            } else if d < second_d {
                second_d = d;
            }
        }
        return (best, best_d, second_d);
    }
    // `Matrix` rejects zero-column inputs, so `d >= 1` here.
    for (c, row) in centroids.data.chunks_exact(centroids.d).enumerate() {
        let d = Matrix::sq_dist_hot(point, row);
        if d < best_d {
            second_d = best_d;
            best_d = d;
            best = c;
        } else if d < second_d {
            second_d = d;
        }
    }
    (best, best_d, second_d)
}

/// Chooses `k` initial centroids with the k-means++ D² weighting, into flat
/// storage.
///
/// Draw-for-draw and value-for-value identical to
/// [`plus_plus_init_reference`]: the cached-norm lower bound only skips
/// `sq_dist` calls that provably cannot lower `d2[i]`, so the D² weights —
/// and therefore every RNG draw and chosen index — are unchanged. On a
/// vector tier the D² sweeps run point-batched over a transposed copy of
/// the data ([`simd::min_d2_update`], bitwise equal to this pruned scalar
/// loop); the transpose is only built when a second centroid exists to
/// amortise it.
fn plus_plus_init(
    data: &Matrix,
    k: usize,
    rng: &mut UnitStream,
    point_norms: &[f64],
    tier: SimdTier,
) -> Centroids {
    let n = data.rows();
    let d = data.cols();
    let mut centroids = Centroids::with_capacity(k, d);
    let first = rng.next_index(n);
    centroids.push(data.row(first));
    let xt = (tier != SimdTier::Scalar && k >= 2)
        .then(|| simd::TransposedPoints::build(tier, data.as_slice(), n, d));
    let mut d2: Vec<f64> = match &xt {
        Some(xt) => {
            let mut v = vec![0.0; n];
            simd::sq_dist_to_point(xt, centroids.row(0), &mut v);
            v
        }
        None => {
            let c0 = centroids.row(0);
            data.iter_rows()
                .map(|row| Matrix::sq_dist_hot(row, c0))
                .collect()
        }
    };

    while centroids.k() < k {
        let total: f64 = d2.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with an existing centroid; pick uniformly.
            rng.next_index(n)
        } else {
            let mut target = rng.next_f64() * total;
            let mut idx = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        centroids.push(data.row(chosen));
        let c = centroids.row(centroids.k() - 1);
        let c_norm = point_norms[chosen];
        match &xt {
            Some(xt) => simd::min_d2_update(xt, c, c_norm, point_norms, &mut d2),
            None => {
                for (i, row) in data.iter_rows().enumerate() {
                    if norm_lower_bound(point_norms[i], c_norm) > d2[i] {
                        continue;
                    }
                    let d = Matrix::sq_dist_hot(row, c);
                    if d < d2[i] {
                        d2[i] = d;
                    }
                }
            }
        }
    }
    centroids
}

/// The reference k-means++ seeding (nested storage, no pruning), kept
/// verbatim so [`KMeans::fit_reference`] is a genuinely independent oracle.
fn plus_plus_init_reference(data: &Matrix, k: usize, rng: &mut UnitStream) -> Vec<Vec<f64>> {
    let n = data.rows();
    let first = (rng.next_f64() * n as f64) as usize % n;
    let mut centroids: Vec<Vec<f64>> = vec![data.row(first).to_vec()];
    let mut d2: Vec<f64> = data
        .iter_rows()
        .map(|row| Matrix::sq_dist(row, &centroids[0]))
        .collect();

    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with an existing centroid; pick uniformly.
            (rng.next_f64() * n as f64) as usize % n
        } else {
            let mut target = rng.next_f64() * total;
            let mut idx = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        let c = data.row(chosen).to_vec();
        for (i, row) in data.iter_rows().enumerate() {
            d2[i] = d2[i].min(Matrix::sq_dist(row, &c));
        }
        centroids.push(c);
    }
    centroids
}

fn nearest(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = Matrix::sq_dist_hot(point, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// A fitted K-Means clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansFit {
    centroids: Vec<Vec<f64>>,
    labels: Vec<usize>,
    inertia: f64,
}

impl KMeansFit {
    /// Cluster centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Cluster label of each input row, in input order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Sum of squared distances of every point to its centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Assigns a new sample to the nearest centroid.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on feature-count mismatch.
    pub fn predict(&self, point: &[f64]) -> Result<usize, MlError> {
        let d = self.centroids[0].len();
        if point.len() != d {
            return Err(MlError::DimensionMismatch {
                expected: d,
                actual: point.len(),
            });
        }
        Ok(nearest(point, &self.centroids).0)
    }

    /// Indices of cluster members, per cluster.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.centroids.len()];
        for (i, &l) in self.labels.iter().enumerate() {
            out[l].push(i);
        }
        out
    }

    /// For each cluster, the index of the member closest to the centroid
    /// (`None` for empty clusters).
    pub fn medoids(&self, data: &Matrix) -> Vec<Option<usize>> {
        let mut best: Vec<Option<(usize, f64)>> = vec![None; self.centroids.len()];
        for (i, row) in data.iter_rows().enumerate() {
            let l = self.labels[i];
            let d = Matrix::sq_dist(row, &self.centroids[l]);
            if best[l].is_none_or(|(_, bd)| d < bd) {
                best[l] = Some((i, d));
            }
        }
        best.into_iter().map(|b| b.map(|(i, _)| i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            let j = i as f64 * 0.01;
            rows.push(vec![0.0 + j, 0.0 - j]);
            rows.push(vec![10.0 + j, 10.0 - j]);
            rows.push(vec![-10.0 + j, 10.0 - j]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn zero_k_rejected() {
        let data = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(matches!(
            KMeans::new(0).fit(&data),
            Err(MlError::InvalidParameter { .. })
        ));
        assert!(matches!(
            KMeans::new(0).fit_reference(&data),
            Err(MlError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn empty_data_rejected() {
        assert_eq!(
            KMeans::new(2).fit(&Matrix::zeros(0, 2)),
            Err(MlError::EmptyInput)
        );
        assert_eq!(
            KMeans::new(2).fit_reference(&Matrix::zeros(0, 2)),
            Err(MlError::EmptyInput)
        );
    }

    #[test]
    fn recovers_three_blobs() {
        let data = blobs();
        let fit = KMeans::new(3).with_seed(1).fit(&data).unwrap();
        // Every blob is internally consistent.
        for b in 0..3 {
            let first = fit.labels()[b];
            for i in 0..20 {
                assert_eq!(fit.labels()[i * 3 + b], first, "blob {b} split");
            }
        }
        // And the three blobs use three distinct labels.
        let mut ls = vec![fit.labels()[0], fit.labels()[1], fit.labels()[2]];
        ls.sort_unstable();
        ls.dedup();
        assert_eq!(ls.len(), 3);
        assert!(fit.inertia() < 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = blobs();
        let a = KMeans::new(3).with_seed(42).fit(&data).unwrap();
        let b = KMeans::new(3).with_seed(42).fit(&data).unwrap();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn bounded_fit_matches_reference_on_blobs() {
        let data = blobs();
        for k in [1, 2, 3, 5, 8] {
            for seed in [0u64, 7, 42] {
                let config = KMeans::new(k).with_seed(seed);
                let bounded = config.fit(&data).unwrap();
                let reference = config.fit_reference(&data).unwrap();
                assert_eq!(bounded, reference, "k={k} seed={seed}");
                assert_eq!(bounded.inertia().to_bits(), reference.inertia().to_bits());
            }
        }
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 4.0]]).unwrap();
        let fit = KMeans::new(1).fit(&data).unwrap();
        assert_eq!(fit.centroids()[0], vec![1.0, 2.0]);
        assert_eq!(fit.labels(), &[0, 0]);
    }

    #[test]
    fn k_greater_than_n_is_capped() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let fit = KMeans::new(5).fit(&data).unwrap();
        assert_eq!(fit.k(), 2);
        assert!(fit.inertia() < 1e-12);
    }

    #[test]
    fn duplicate_points_do_not_hang() {
        let data = Matrix::from_rows(&vec![vec![3.0, 3.0]; 10]).unwrap();
        let fit = KMeans::new(3).fit(&data).unwrap();
        assert_eq!(fit.labels().len(), 10);
        assert!(fit.inertia() < 1e-12);
    }

    #[test]
    fn predict_assigns_to_nearest() {
        let data = blobs();
        let fit = KMeans::new(3).with_seed(1).fit(&data).unwrap();
        let l0 = fit.predict(&[0.1, 0.0]).unwrap();
        assert_eq!(l0, fit.labels()[0]);
        assert!(matches!(
            fit.predict(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn members_partition_input() {
        let data = blobs();
        let fit = KMeans::new(3).with_seed(1).fit(&data).unwrap();
        let members = fit.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, data.rows());
    }

    #[test]
    fn medoid_is_in_its_cluster() {
        let data = blobs();
        let fit = KMeans::new(3).with_seed(1).fit(&data).unwrap();
        for (c, m) in fit.medoids(&data).into_iter().enumerate() {
            let m = m.expect("no empty clusters here");
            assert_eq!(fit.labels()[m], c);
        }
    }

    #[test]
    fn inertia_non_increasing_in_k() {
        let data = blobs();
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let fit = KMeans::new(k).with_seed(3).fit(&data).unwrap();
            assert!(
                fit.inertia() <= prev + 1e-9,
                "k={k}: {} > {prev}",
                fit.inertia()
            );
            prev = fit.inertia();
        }
    }

    #[test]
    fn norm_lower_bound_never_exceeds_true_distance() {
        let mut rng = UnitStream::new(5);
        for _ in 0..2000 {
            let d = 1 + (rng.next_u64() % 8) as usize;
            let a: Vec<f64> = (0..d).map(|_| rng.next_range(-1e3, 1e3)).collect();
            let b: Vec<f64> = (0..d).map(|_| rng.next_range(-1e3, 1e3)).collect();
            let lb = norm_lower_bound(
                Matrix::sq_norm(&a).sqrt(),
                Matrix::sq_norm(&b).sqrt(),
            );
            assert!(
                lb <= Matrix::sq_dist(&a, &b),
                "bound {lb} above distance for {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn fit_batch_matches_sequential_fits_for_any_worker_count() {
        let data = blobs();
        let configs: Vec<KMeans> = (1..=6)
            .map(|k| KMeans::new(k).with_seed(11 ^ k as u64))
            .collect();
        let sequential: Vec<KMeansFit> = configs.iter().map(|c| c.fit(&data).unwrap()).collect();
        for workers in [1, 2, 5] {
            let batch =
                KMeans::fit_batch(&configs, &data, &Executor::new(workers)).unwrap();
            assert_eq!(batch.len(), sequential.len());
            for (b, s) in batch.iter().zip(&sequential) {
                assert_eq!(b.labels(), s.labels());
                assert_eq!(b.centroids(), s.centroids());
                assert_eq!(b.inertia().to_bits(), s.inertia().to_bits());
            }
        }
    }

    #[test]
    fn chunked_fit_is_worker_count_invariant() {
        // More rows than one assignment chunk, so parallel runs really
        // splice multiple chunk results.
        let mut rng = UnitStream::new(77);
        let rows: Vec<Vec<f64>> = (0..(ASSIGN_CHUNK * 2 + 100))
            .map(|i| {
                let c = (i % 4) as f64 * 25.0;
                vec![c + rng.next_range(-1.0, 1.0), c - rng.next_range(-1.0, 1.0)]
            })
            .collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let config = KMeans::new(4).with_seed(9);
        let sequential = config.fit(&data).unwrap();
        for workers in [2, 4, 8] {
            let parallel = config.with_executor(Executor::new(workers)).fit(&data).unwrap();
            assert_eq!(parallel, sequential, "{workers} workers diverged");
            assert_eq!(
                parallel.inertia().to_bits(),
                sequential.inertia().to_bits()
            );
        }
    }
}
