use pka_stats::hash::UnitStream;
use pka_stats::Executor;

use crate::{Matrix, MlError};

/// K-Means clustering (Lloyd's algorithm with k-means++ seeding).
///
/// *Principal Kernel Selection* sweeps `K` from 1 to 20 over the
/// PCA-projected kernel metrics; the paper picks K-Means over hierarchical
/// clustering explicitly because it scales to the millions of kernels in
/// MLPerf workloads (Section 3.1) — Lloyd's algorithm is `O(n · k · d)` per
/// iteration and needs only `O(k · d)` extra memory, versus the `O(n²)`
/// distance matrix agglomerative methods require.
///
/// Deterministic: seeding uses an internal splitmix64 stream derived from
/// [`with_seed`](KMeans::with_seed) (default 0).
///
/// # Examples
///
/// ```
/// use pka_ml::{KMeans, Matrix};
///
/// let data = Matrix::from_rows(&[
///     vec![0.0], vec![0.2], vec![10.0], vec![10.2], vec![20.0],
/// ])?;
/// let fit = KMeans::new(3).fit(&data)?;
/// assert_eq!(fit.centroids().len(), 3);
/// assert!(fit.inertia() < 0.1);
/// # Ok::<(), pka_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeans {
    k: usize,
    max_iterations: usize,
    seed: u64,
}

impl KMeans {
    /// Configures K-Means with `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            seed: 0,
        }
    }

    /// Sets the RNG seed used by k-means++ initialisation.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Lloyd-iteration budget (default 100).
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Fits every configuration in `configs` against the same data — the
    /// PKS K-sweep's shape — fanning the independent runs out over `exec`.
    ///
    /// Each configuration carries its own seed, so the runs share no RNG
    /// state and the result vector (in `configs` order) is identical for
    /// any worker count.
    ///
    /// # Errors
    ///
    /// Returns the first (by `configs` index) error produced by
    /// [`KMeans::fit`].
    pub fn fit_batch(
        configs: &[KMeans],
        data: &Matrix,
        exec: &Executor,
    ) -> Result<Vec<KMeansFit>, MlError> {
        exec.try_map(configs, |_, config| config.fit(data))
    }

    /// Clusters the rows of `data`.
    ///
    /// If `k` exceeds the number of distinct points, surplus clusters end up
    /// empty and are re-seeded onto the points currently farthest from their
    /// centroid; if there are genuinely fewer distinct points than `k`, some
    /// centroids will coincide, which is harmless for PKS (the duplicate
    /// groups are simply empty or tiny).
    ///
    /// # Errors
    ///
    /// * [`MlError::InvalidParameter`] if `k` is zero.
    /// * [`MlError::EmptyInput`] if `data` has no rows.
    pub fn fit(&self, data: &Matrix) -> Result<KMeansFit, MlError> {
        if self.k == 0 {
            return Err(MlError::InvalidParameter {
                name: "k",
                message: "must be at least 1".into(),
            });
        }
        if data.rows() == 0 || data.cols() == 0 {
            return Err(MlError::EmptyInput);
        }
        let n = data.rows();
        let k = self.k.min(n);
        let mut rng = UnitStream::new(self.seed ^ 0x9e3779b97f4a7c15);

        let mut centroids = plus_plus_init(data, k, &mut rng);
        let mut labels = vec![0usize; n];

        for _ in 0..self.max_iterations {
            // Assignment step.
            let mut changed = false;
            for (i, row) in data.iter_rows().enumerate() {
                let best = nearest(row, &centroids).0;
                if labels[i] != best {
                    labels[i] = best;
                    changed = true;
                }
            }

            // Update step.
            let mut sums = vec![vec![0.0; data.cols()]; k];
            let mut counts = vec![0usize; k];
            for (i, row) in data.iter_rows().enumerate() {
                counts[labels[i]] += 1;
                for (s, &x) in sums[labels[i]].iter_mut().zip(row) {
                    *s += x;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster on the point farthest from its
                    // current centroid.
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            let da = Matrix::sq_dist(data.row(a), &centroids[labels[a]]);
                            let db = Matrix::sq_dist(data.row(b), &centroids[labels[b]]);
                            da.partial_cmp(&db).expect("distances are finite")
                        })
                        .expect("data is non-empty");
                    centroids[c] = data.row(far).to_vec();
                    labels[far] = c;
                    changed = true;
                } else {
                    for (j, s) in sums[c].iter().enumerate() {
                        centroids[c][j] = s / counts[c] as f64;
                    }
                }
            }

            if !changed {
                break;
            }
        }

        let inertia = data
            .iter_rows()
            .enumerate()
            .map(|(i, row)| Matrix::sq_dist(row, &centroids[labels[i]]))
            .sum();

        Ok(KMeansFit {
            centroids,
            labels,
            inertia,
        })
    }
}

/// Chooses `k` initial centroids with the k-means++ D² weighting.
fn plus_plus_init(data: &Matrix, k: usize, rng: &mut UnitStream) -> Vec<Vec<f64>> {
    let n = data.rows();
    let first = (rng.next_f64() * n as f64) as usize % n;
    let mut centroids: Vec<Vec<f64>> = vec![data.row(first).to_vec()];
    let mut d2: Vec<f64> = data
        .iter_rows()
        .map(|row| Matrix::sq_dist(row, &centroids[0]))
        .collect();

    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with an existing centroid; pick uniformly.
            (rng.next_f64() * n as f64) as usize % n
        } else {
            let mut target = rng.next_f64() * total;
            let mut idx = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        let c = data.row(chosen).to_vec();
        for (i, row) in data.iter_rows().enumerate() {
            d2[i] = d2[i].min(Matrix::sq_dist(row, &c));
        }
        centroids.push(c);
    }
    centroids
}

fn nearest(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = Matrix::sq_dist(point, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// A fitted K-Means clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansFit {
    centroids: Vec<Vec<f64>>,
    labels: Vec<usize>,
    inertia: f64,
}

impl KMeansFit {
    /// Cluster centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Cluster label of each input row, in input order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Sum of squared distances of every point to its centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Assigns a new sample to the nearest centroid.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on feature-count mismatch.
    pub fn predict(&self, point: &[f64]) -> Result<usize, MlError> {
        let d = self.centroids[0].len();
        if point.len() != d {
            return Err(MlError::DimensionMismatch {
                expected: d,
                actual: point.len(),
            });
        }
        Ok(nearest(point, &self.centroids).0)
    }

    /// Indices of cluster members, per cluster.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.centroids.len()];
        for (i, &l) in self.labels.iter().enumerate() {
            out[l].push(i);
        }
        out
    }

    /// For each cluster, the index of the member closest to the centroid
    /// (`None` for empty clusters).
    pub fn medoids(&self, data: &Matrix) -> Vec<Option<usize>> {
        let mut best: Vec<Option<(usize, f64)>> = vec![None; self.centroids.len()];
        for (i, row) in data.iter_rows().enumerate() {
            let l = self.labels[i];
            let d = Matrix::sq_dist(row, &self.centroids[l]);
            if best[l].is_none_or(|(_, bd)| d < bd) {
                best[l] = Some((i, d));
            }
        }
        best.into_iter().map(|b| b.map(|(i, _)| i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            let j = i as f64 * 0.01;
            rows.push(vec![0.0 + j, 0.0 - j]);
            rows.push(vec![10.0 + j, 10.0 - j]);
            rows.push(vec![-10.0 + j, 10.0 - j]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn zero_k_rejected() {
        let data = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(matches!(
            KMeans::new(0).fit(&data),
            Err(MlError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn empty_data_rejected() {
        assert_eq!(
            KMeans::new(2).fit(&Matrix::zeros(0, 2)),
            Err(MlError::EmptyInput)
        );
    }

    #[test]
    fn recovers_three_blobs() {
        let data = blobs();
        let fit = KMeans::new(3).with_seed(1).fit(&data).unwrap();
        // Every blob is internally consistent.
        for b in 0..3 {
            let first = fit.labels()[b];
            for i in 0..20 {
                assert_eq!(fit.labels()[i * 3 + b], first, "blob {b} split");
            }
        }
        // And the three blobs use three distinct labels.
        let mut ls = vec![fit.labels()[0], fit.labels()[1], fit.labels()[2]];
        ls.sort_unstable();
        ls.dedup();
        assert_eq!(ls.len(), 3);
        assert!(fit.inertia() < 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = blobs();
        let a = KMeans::new(3).with_seed(42).fit(&data).unwrap();
        let b = KMeans::new(3).with_seed(42).fit(&data).unwrap();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 4.0]]).unwrap();
        let fit = KMeans::new(1).fit(&data).unwrap();
        assert_eq!(fit.centroids()[0], vec![1.0, 2.0]);
        assert_eq!(fit.labels(), &[0, 0]);
    }

    #[test]
    fn k_greater_than_n_is_capped() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let fit = KMeans::new(5).fit(&data).unwrap();
        assert_eq!(fit.k(), 2);
        assert!(fit.inertia() < 1e-12);
    }

    #[test]
    fn duplicate_points_do_not_hang() {
        let data = Matrix::from_rows(&vec![vec![3.0, 3.0]; 10]).unwrap();
        let fit = KMeans::new(3).fit(&data).unwrap();
        assert_eq!(fit.labels().len(), 10);
        assert!(fit.inertia() < 1e-12);
    }

    #[test]
    fn predict_assigns_to_nearest() {
        let data = blobs();
        let fit = KMeans::new(3).with_seed(1).fit(&data).unwrap();
        let l0 = fit.predict(&[0.1, 0.0]).unwrap();
        assert_eq!(l0, fit.labels()[0]);
        assert!(matches!(
            fit.predict(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn members_partition_input() {
        let data = blobs();
        let fit = KMeans::new(3).with_seed(1).fit(&data).unwrap();
        let members = fit.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, data.rows());
    }

    #[test]
    fn medoid_is_in_its_cluster() {
        let data = blobs();
        let fit = KMeans::new(3).with_seed(1).fit(&data).unwrap();
        for (c, m) in fit.medoids(&data).into_iter().enumerate() {
            let m = m.expect("no empty clusters here");
            assert_eq!(fit.labels()[m], c);
        }
    }

    #[test]
    fn inertia_non_increasing_in_k() {
        let data = blobs();
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let fit = KMeans::new(k).with_seed(3).fit(&data).unwrap();
            assert!(
                fit.inertia() <= prev + 1e-9,
                "k={k}: {} > {prev}",
                fit.inertia()
            );
            prev = fit.inertia();
        }
    }

    #[test]
    fn fit_batch_matches_sequential_fits_for_any_worker_count() {
        let data = blobs();
        let configs: Vec<KMeans> = (1..=6)
            .map(|k| KMeans::new(k).with_seed(11 ^ k as u64))
            .collect();
        let sequential: Vec<KMeansFit> = configs.iter().map(|c| c.fit(&data).unwrap()).collect();
        for workers in [1, 2, 5] {
            let batch =
                KMeans::fit_batch(&configs, &data, &Executor::new(workers)).unwrap();
            assert_eq!(batch.len(), sequential.len());
            for (b, s) in batch.iter().zip(&sequential) {
                assert_eq!(b.labels(), s.labels());
                assert_eq!(b.centroids(), s.centroids());
                assert_eq!(b.inertia().to_bits(), s.inertia().to_bits());
            }
        }
    }
}
