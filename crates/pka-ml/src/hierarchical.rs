use crate::{Matrix, MlError};

/// Linkage criterion for agglomerative clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Distance between clusters = mean pairwise distance (UPGMA). This is
    /// what TBPoint's clustering uses.
    #[default]
    Average,
    /// Distance between clusters = minimum pairwise distance.
    Single,
    /// Distance between clusters = maximum pairwise distance.
    Complete,
}

/// Agglomerative (bottom-up) hierarchical clustering.
///
/// Implements the clustering the **TBPoint** baseline relies on. The
/// paper's central scalability argument (Section 3.1) is that hierarchical
/// clustering "demands an impractical amount of memory and runtime" on
/// million-kernel workloads — and this implementation is honest about
/// that: it materialises the full `O(n²)` distance matrix and merges with
/// Lance–Williams updates in `O(n³)` worst-case time. The
/// `clustering_scalability` benchmark exploits this to reproduce the
/// paper's argument quantitatively.
///
/// For threshold sweeps (TBPoint sweeps 20 cut heights), build the
/// [`Dendrogram`] once and [`cut`](Dendrogram::cut) it repeatedly — each
/// cut is near-linear.
///
/// # Examples
///
/// ```
/// use pka_ml::{Agglomerative, Matrix};
///
/// let data = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![5.0]])?;
/// let labels = Agglomerative::new().cut_at(&data, 1.0)?;
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// # Ok::<(), pka_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Agglomerative {
    linkage: Linkage,
}

impl Agglomerative {
    /// Average-linkage clustering (TBPoint's choice).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the linkage criterion.
    pub fn with_linkage(mut self, linkage: Linkage) -> Self {
        self.linkage = linkage;
        self
    }

    /// Builds the full merge tree: every merge in greedy
    /// closest-pair-first order, with the linkage distance at which it
    /// happened.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyInput`] if `data` has no rows.
    pub fn dendrogram(&self, data: &Matrix) -> Result<Dendrogram, MlError> {
        if data.rows() == 0 || data.cols() == 0 {
            return Err(MlError::EmptyInput);
        }
        let n = data.rows();
        // Condensed distance matrix between live clusters, updated with
        // Lance–Williams coefficients as clusters merge.
        let mut dist = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let d = Matrix::sq_dist(data.row(i), data.row(j)).sqrt();
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let mut alive: Vec<bool> = vec![true; n];
        let mut size: Vec<u64> = vec![1; n];
        let mut merges = Vec::with_capacity(n.saturating_sub(1));

        for _ in 1..n {
            // Closest live pair.
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..n {
                if !alive[i] {
                    continue;
                }
                for j in i + 1..n {
                    if !alive[j] {
                        continue;
                    }
                    let d = dist[i * n + j];
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((i, j, d));
                    }
                }
            }
            let (a, b, d) = best.expect("at least two live clusters");
            merges.push(Merge {
                left: a,
                right: b,
                distance: d,
            });
            // Merge b into a; update distances via Lance–Williams.
            let (sa, sb) = (size[a] as f64, size[b] as f64);
            for k in 0..n {
                if !alive[k] || k == a || k == b {
                    continue;
                }
                let dka = dist[k * n + a];
                let dkb = dist[k * n + b];
                let updated = match self.linkage {
                    Linkage::Average => (sa * dka + sb * dkb) / (sa + sb),
                    Linkage::Single => dka.min(dkb),
                    Linkage::Complete => dka.max(dkb),
                };
                dist[k * n + a] = updated;
                dist[a * n + k] = updated;
            }
            size[a] += size[b];
            alive[b] = false;
        }
        Ok(Dendrogram { n, merges })
    }

    /// Merges clusters until every inter-cluster distance exceeds
    /// `threshold`, then returns a label per row (labels are compacted to
    /// `0..n_clusters` in first-appearance order).
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyInput`] if `data` has no rows.
    /// * [`MlError::InvalidParameter`] if `threshold` is negative or NaN.
    pub fn cut_at(&self, data: &Matrix, threshold: f64) -> Result<Vec<usize>, MlError> {
        if threshold.is_nan() || threshold < 0.0 {
            return Err(MlError::InvalidParameter {
                name: "threshold",
                message: "must be non-negative and not NaN".into(),
            });
        }
        Ok(self.dendrogram(data)?.cut(threshold))
    }

    /// Number of clusters produced by [`cut_at`](Self::cut_at) for a given
    /// threshold.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`cut_at`](Self::cut_at).
    pub fn cluster_count(&self, data: &Matrix, threshold: f64) -> Result<usize, MlError> {
        let labels = self.cut_at(data, threshold)?;
        Ok(labels.iter().copied().max().map_or(0, |m| m + 1))
    }
}

/// One merge event in a [`Dendrogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct Merge {
    left: usize,
    right: usize,
    distance: f64,
}

/// A fully-built agglomerative merge tree: cut it at any height in
/// near-linear time (the structure TBPoint's 20-threshold sweep needs —
/// one `O(n³)` build, twenty cheap cuts).
///
/// # Examples
///
/// ```
/// use pka_ml::{Agglomerative, Matrix};
///
/// let data = Matrix::from_rows(&[vec![0.0], vec![0.2], vec![9.0]])?;
/// let tree = Agglomerative::new().dendrogram(&data)?;
/// assert_eq!(tree.cluster_count(1.0), 2);
/// assert_eq!(tree.cluster_count(100.0), 1);
/// # Ok::<(), pka_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaves (input rows).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for an empty tree (never produced by
    /// [`Agglomerative::dendrogram`]).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Applies every merge whose linkage distance is at most `threshold`
    /// and returns labels compacted to `0..n_clusters` in first-appearance
    /// order.
    pub fn cut(&self, threshold: f64) -> Vec<usize> {
        // Union-find over the leaves.
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for m in &self.merges {
            if m.distance > threshold {
                break;
            }
            let a = find(&mut parent, m.left);
            let b = find(&mut parent, m.right);
            parent[b] = a;
        }
        // Compact roots to 0..k in first-appearance order.
        let mut labels = vec![usize::MAX; self.n];
        let mut next = 0usize;
        let mut root_label = std::collections::HashMap::new();
        for i in 0..self.n {
            let r = find(&mut parent, i);
            let l = *root_label.entry(r).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            labels[i] = l;
        }
        labels
    }

    /// Cluster count at a cut height.
    pub fn cluster_count(&self, threshold: f64) -> usize {
        self.cut(threshold)
            .into_iter()
            .max()
            .map_or(0, |m| m + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Matrix {
        Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![10.0], vec![10.1]]).unwrap()
    }

    #[test]
    fn invalid_threshold_rejected() {
        let data = line();
        assert!(Agglomerative::new().cut_at(&data, -1.0).is_err());
        assert!(Agglomerative::new().cut_at(&data, f64::NAN).is_err());
    }

    #[test]
    fn two_well_separated_groups() {
        let labels = Agglomerative::new().cut_at(&line(), 1.0).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn zero_threshold_keeps_singletons() {
        let labels = Agglomerative::new().cut_at(&line(), 0.0).unwrap();
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn huge_threshold_merges_everything() {
        let labels = Agglomerative::new().cut_at(&line(), 1e9).unwrap();
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn cluster_count_monotone_in_threshold() {
        let data = line();
        let tree = Agglomerative::new().dendrogram(&data).unwrap();
        let mut prev = usize::MAX;
        for t in [0.0, 0.05, 0.15, 1.0, 20.0] {
            let c = tree.cluster_count(t);
            assert!(c <= prev, "threshold {t} produced {c} > {prev}");
            prev = c;
        }
    }

    #[test]
    fn dendrogram_cuts_match_direct_clustering() {
        let data = line();
        let tree = Agglomerative::new().dendrogram(&data).unwrap();
        for t in [0.0, 0.11, 0.5, 2.0, 20.0] {
            let via_tree = tree.cut(t);
            let direct = Agglomerative::new().cut_at(&data, t).unwrap();
            assert_eq!(via_tree, direct, "threshold {t}");
        }
    }

    #[test]
    fn linkages_agree_on_clean_data() {
        let data = line();
        for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
            let labels = Agglomerative::new()
                .with_linkage(linkage)
                .cut_at(&data, 1.0)
                .unwrap();
            assert_eq!(labels[0], labels[2], "{linkage:?}");
            assert_ne!(labels[0], labels[4], "{linkage:?}");
        }
    }

    #[test]
    fn single_point() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let labels = Agglomerative::new().cut_at(&data, 1.0).unwrap();
        assert_eq!(labels, vec![0]);
        let tree = Agglomerative::new().dendrogram(&data).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.cluster_count(0.0), 1);
    }

    #[test]
    fn chain_behaviour_differs_single_vs_complete() {
        // A chain 0 - 1 - 2 - ... each 1.0 apart. Single linkage merges the
        // whole chain at threshold 1.0; complete linkage does not.
        let data =
            Matrix::from_rows(&(0..6).map(|i| vec![i as f64]).collect::<Vec<_>>()).unwrap();
        let single = Agglomerative::new()
            .with_linkage(Linkage::Single)
            .cluster_count(&data, 1.0)
            .unwrap();
        let complete = Agglomerative::new()
            .with_linkage(Linkage::Complete)
            .cluster_count(&data, 1.0)
            .unwrap();
        assert_eq!(single, 1);
        assert!(complete > 1);
    }

    #[test]
    fn average_linkage_separates_pods_from_outlier() {
        let data = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.2],
            vec![0.4, 0.9],
            vec![6.0, 6.0],
            vec![6.5, 5.5],
            vec![3.1, 3.0],
        ])
        .unwrap();
        let tree = Agglomerative::new().dendrogram(&data).unwrap();
        let labels = tree.cut(2.0);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert_ne!(labels[5], labels[3]);
    }
}
