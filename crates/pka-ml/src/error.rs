use std::error::Error;
use std::fmt;

/// Errors produced by the machine-learning substrate.
///
/// # Examples
///
/// ```
/// use pka_ml::{Matrix, MlError};
///
/// let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
/// assert!(matches!(err, MlError::DimensionMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// An algorithm was given no samples (or no features).
    EmptyInput,
    /// Two shapes that must agree did not.
    DimensionMismatch {
        /// What was expected, e.g. a column count.
        expected: usize,
        /// What was actually provided.
        actual: usize,
    },
    /// A hyper-parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// An iterative solver failed to converge within its iteration budget.
    DidNotConverge {
        /// The algorithm that failed.
        algorithm: &'static str,
        /// The iteration budget that was exhausted.
        max_iterations: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyInput => write!(f, "input contains no samples or no features"),
            MlError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            MlError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            MlError::DidNotConverge {
                algorithm,
                max_iterations,
            } => write!(
                f,
                "{algorithm} did not converge within {max_iterations} iterations"
            ),
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            MlError::EmptyInput,
            MlError::DimensionMismatch {
                expected: 3,
                actual: 4,
            },
            MlError::InvalidParameter {
                name: "k",
                message: "must be positive".into(),
            },
            MlError::DidNotConverge {
                algorithm: "jacobi",
                max_iterations: 100,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}
