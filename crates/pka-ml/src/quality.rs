//! Clustering-quality diagnostics: silhouette coefficient and
//! Davies–Bouldin index.
//!
//! PKS selects K by projection error, but a user tuning the pipeline wants
//! to know whether the clusters themselves are crisp or mushy — these are
//! the two standard internal validity measures, reported by the PKS
//! diagnostics and the experiment harness.

use crate::simd::{self, SimdTier};
use crate::{Matrix, MlError};

/// Mean silhouette coefficient over all points, in `[-1, 1]`.
///
/// For each point, `a` is its mean distance to its own cluster's other
/// members and `b` the smallest mean distance to another cluster; the
/// silhouette is `(b - a) / max(a, b)`. Points in singleton clusters score
/// 0 (scikit-learn's convention). Values near 1 mean crisp clusters; near
/// 0, overlapping ones.
///
/// # Errors
///
/// * [`MlError::DimensionMismatch`] if `labels.len() != data.rows()`.
/// * [`MlError::EmptyInput`] if `data` is empty.
/// * [`MlError::InvalidParameter`] with fewer than two clusters (the
///   measure is undefined).
///
/// # Examples
///
/// ```
/// use pka_ml::{silhouette_score, Matrix};
///
/// let data = Matrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![10.0], vec![10.1],
/// ])?;
/// let score = silhouette_score(&data, &[0, 0, 1, 1])?;
/// assert!(score > 0.9);
/// # Ok::<(), pka_ml::MlError>(())
/// ```
pub fn silhouette_score(data: &Matrix, labels: &[usize]) -> Result<f64, MlError> {
    validate(data, labels)?;
    let k = labels.iter().copied().max().expect("non-empty") + 1;
    if k < 2 {
        return Err(MlError::InvalidParameter {
            name: "labels",
            message: "silhouette needs at least two clusters".into(),
        });
    }
    let n = data.rows();
    let counts = cluster_counts(labels, k);

    // The O(n²) row sweep is the hot loop: on a vector tier each outer row
    // gets its distances to *all* rows from one point-batched kernel pass
    // (bitwise equal to the per-pair scalar calls), then the accumulation
    // below runs the exact scalar order over them. Always the exact tier:
    // this is the kernel-dispatch showcase, not a fast-math site.
    let tier = simd::active_tier();
    let xt = (tier != SimdTier::Scalar)
        .then(|| simd::TransposedPoints::build(tier, data.as_slice(), n, data.cols()));
    let mut dists = vec![0.0f64; if xt.is_some() { n } else { 0 }];

    let mut total = 0.0;
    for i in 0..n {
        if let Some(xt) = &xt {
            simd::sq_dist_to_point(xt, data.row(i), &mut dists);
        }
        // Mean distance from point i to each cluster.
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            // All rows share `data`'s width, so the checked `sq_dist`
            // would re-assert the same equality O(n²) times.
            sums[labels[j]] += if xt.is_some() {
                dists[j].sqrt()
            } else {
                Matrix::sq_dist_hot(data.row(i), data.row(j)).sqrt()
            };
        }
        let own = labels[i];
        if counts[own] <= 1 {
            continue; // singleton scores 0
        }
        let a = sums[own] / (counts[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b).max(f64::MIN_POSITIVE);
        }
    }
    Ok(total / n as f64)
}

/// Davies–Bouldin index (lower is better; 0 is ideal).
///
/// The mean over clusters of the worst-case ratio of within-cluster
/// scatter to between-centroid separation.
///
/// # Errors
///
/// Same conditions as [`silhouette_score`].
///
/// # Examples
///
/// ```
/// use pka_ml::{davies_bouldin_index, Matrix};
///
/// let data = Matrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![10.0], vec![10.1],
/// ])?;
/// let dbi = davies_bouldin_index(&data, &[0, 0, 1, 1])?;
/// assert!(dbi < 0.1);
/// # Ok::<(), pka_ml::MlError>(())
/// ```
pub fn davies_bouldin_index(data: &Matrix, labels: &[usize]) -> Result<f64, MlError> {
    validate(data, labels)?;
    let k = labels.iter().copied().max().expect("non-empty") + 1;
    if k < 2 {
        return Err(MlError::InvalidParameter {
            name: "labels",
            message: "davies-bouldin needs at least two clusters".into(),
        });
    }
    let d = data.cols();
    let counts = cluster_counts(labels, k);

    // Centroids.
    let mut centroids = vec![vec![0.0f64; d]; k];
    for (i, row) in data.iter_rows().enumerate() {
        for (c, &x) in centroids[labels[i]].iter_mut().zip(row) {
            *c += x;
        }
    }
    for (c, &n) in centroids.iter_mut().zip(&counts) {
        if n > 0 {
            for x in c.iter_mut() {
                *x /= n as f64;
            }
        }
    }
    // Mean scatter per cluster.
    // Reporting-grade distances: honour `--fast-math`, exact by default.
    let mut scatter = vec![0.0f64; k];
    for (i, row) in data.iter_rows().enumerate() {
        scatter[labels[i]] += simd::sq_dist_auto(row, &centroids[labels[i]]).sqrt();
    }
    for (s, &n) in scatter.iter_mut().zip(&counts) {
        if n > 0 {
            *s /= n as f64;
        }
    }

    let live: Vec<usize> = (0..k).filter(|&c| counts[c] > 0).collect();
    let mut total = 0.0;
    for &i in &live {
        let mut worst = 0.0f64;
        for &j in &live {
            if i == j {
                continue;
            }
            let sep = simd::sq_dist_auto(&centroids[i], &centroids[j]).sqrt();
            if sep > 0.0 {
                worst = worst.max((scatter[i] + scatter[j]) / sep);
            }
        }
        total += worst;
    }
    Ok(total / live.len() as f64)
}

fn cluster_counts(labels: &[usize], k: usize) -> Vec<u64> {
    let mut counts = vec![0u64; k];
    for &l in labels {
        counts[l] += 1;
    }
    counts
}

fn validate(data: &Matrix, labels: &[usize]) -> Result<(), MlError> {
    if data.rows() == 0 || data.cols() == 0 {
        return Err(MlError::EmptyInput);
    }
    if labels.len() != data.rows() {
        return Err(MlError::DimensionMismatch {
            expected: data.rows(),
            actual: labels.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.01;
            rows.push(vec![0.0 + j, 0.0]);
            labels.push(0);
            rows.push(vec![10.0, 10.0 + j]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn crisp_clusters_score_high() {
        let (data, labels) = blobs();
        assert!(silhouette_score(&data, &labels).unwrap() > 0.95);
        assert!(davies_bouldin_index(&data, &labels).unwrap() < 0.05);
    }

    #[test]
    fn shuffled_labels_score_poorly() {
        let (data, labels) = blobs();
        // Mix both blobs into each cluster: rows alternate blob membership,
        // so grouping consecutive pairs splits every blob across clusters.
        let scrambled: Vec<usize> = (0..labels.len()).map(|i| (i / 2) % 2).collect();
        let good = silhouette_score(&data, &labels).unwrap();
        let poor = silhouette_score(&data, &scrambled).unwrap();
        assert!(poor < good);
        assert!(poor < 0.2, "{poor}");
        let dbi_good = davies_bouldin_index(&data, &labels).unwrap();
        let dbi_poor = davies_bouldin_index(&data, &scrambled).unwrap();
        assert!(dbi_poor > dbi_good);
    }

    #[test]
    fn single_cluster_rejected() {
        let (data, _) = blobs();
        let one = vec![0usize; data.rows()];
        assert!(silhouette_score(&data, &one).is_err());
        assert!(davies_bouldin_index(&data, &one).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let (data, _) = blobs();
        assert!(matches!(
            silhouette_score(&data, &[0, 1]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn singletons_are_tolerated() {
        let data = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![9.0]]).unwrap();
        let s = silhouette_score(&data, &[0, 0, 1]).unwrap();
        assert!(s > 0.5);
    }
}
