//! SIMD tiers for the clustering/projection hot loops.
//!
//! Builds on [`pka_stats::simd`] (tier detection, the fast-math switch) and
//! adds the three distance/projection kernels the PKS pipeline spends its
//! time in:
//!
//! * **Batch squared distance, lane = row** ([`InterleavedRows`] +
//!   [`sq_dist_batch`]): one point against every centroid — the K-Means
//!   full scan.
//! * **Batch squared distance, lane = point** ([`TransposedPoints`] +
//!   [`sq_dist_to_point`] / [`min_d2_update`]): every point against one
//!   centroid — k-means++ seeding and the silhouette's row sweeps.
//! * **Batch dot product, lane = component** ([`dot_batch`]): one centred
//!   row against every principal component — PCA projection.
//! * **Hamerly bound reconstruction, lane = point** ([`prune_survivors`]):
//!   the per-point bound arithmetic + prune test that K-Means assignment
//!   pays for *every* point *every* iteration — by far the most visited
//!   code in the sweep once pruning works.
//! * **Fused full scan, lane = point** ([`scan_points`]): best and
//!   second-best centroid for each surviving point, with the scalar
//!   strict-`<` selection semantics replicated per lane.
//!
//! All of these vectorise **across independent outputs**: each lane runs the
//! scalar op sequence for its own output element, additions are never
//! reassociated within one output, and FMA is never used. The results are
//! therefore bitwise equal to the scalar code for every input — including
//! NaN, ±inf and denormals — which `tests/simd_parity.rs` and this crate's
//! property suite enforce. One carve-out: when a result *is* NaN, its sign
//! and payload bits are not part of the guarantee. IEEE 754 leaves NaN
//! propagation unspecified — x86 generates the negative "real indefinite"
//! for `inf − inf`, and the compiler may commute an add, changing which
//! input NaN survives — so the parity suites compare NaN results as a
//! class, and everything else to the bit.
//!
//! The opt-in fast-math tier ([`sq_dist_fast`], [`dot_fast`]) instead
//! splits a *single* reduction across lanes and reassociates the horizontal
//! sum as `((l0 + l1) + (l2 + l3)) + tail` (AVX2; `(l0 + l1) + tail` for
//! SSE4.1). For a length-`d` reduction the result differs from the scalar
//! order by at most `2 · d · ε` (`ε = 2⁻⁵³`) relative to the sum of
//! absolute terms — the standard recursive-summation bound (Higham §4.2)
//! applied to both orders. The parity suite asserts this bound explicitly.

// The crate is `deny(unsafe_code)`; intrinsics are confined to this module.
#![allow(unsafe_code)]

pub use pka_stats::simd::{active_tier, detect_tier, fast_math, set_fast_math, SimdTier};

use crate::kmeans::{norm_lower_bound, BOUND_PAD, CUM_PAD};

/// Rows stored lane-interleaved so one vector op reads the same coordinate
/// of `lanes` consecutive rows.
///
/// For lane width `w`, block `b` packs rows `b·w .. b·w+w` as `d`
/// consecutive groups of `w` values: group `j` holds coordinate `j` of each
/// row in the block (missing rows in the final block are zero-padded; their
/// lanes are computed and discarded). On the [`SimdTier::Scalar`] tier the
/// layout degenerates to a plain row-major copy.
#[derive(Debug, Clone)]
pub struct InterleavedRows {
    tier: SimdTier,
    d: usize,
    rows: usize,
    data: Vec<f64>,
}

impl InterleavedRows {
    /// Packs `rows` (row-major `flat`, `d` columns) for `tier`.
    pub fn build(tier: SimdTier, flat: &[f64], d: usize) -> Self {
        let mut s = Self {
            tier,
            d,
            rows: 0,
            data: Vec::new(),
        };
        s.rebuild(flat);
        s
    }

    /// Re-packs after the source rows changed (same width, any row count).
    /// Reuses the allocation — this runs once per Lloyd iteration.
    pub fn rebuild(&mut self, flat: &[f64]) {
        let d = self.d;
        debug_assert!(d > 0 && flat.len() % d == 0);
        let rows = flat.len() / d;
        self.rows = rows;
        let w = self.tier.lanes();
        if w == 1 {
            self.data.clear();
            self.data.extend_from_slice(flat);
            return;
        }
        let blocks = rows.div_ceil(w);
        self.data.clear();
        self.data.resize(blocks * d * w, 0.0);
        for b in 0..blocks {
            let base = b * d * w;
            for j in 0..d {
                for l in 0..w {
                    let r = b * w + l;
                    self.data[base + j * w + l] = if r < rows { flat[r * d + j] } else { 0.0 };
                }
            }
        }
    }

    /// The tier the block was packed for.
    pub fn tier(&self) -> SimdTier {
        self.tier
    }

    /// Number of packed rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width (dimensions).
    pub fn dims(&self) -> usize {
        self.d
    }
}

/// `out[r] = ‖point − row_r‖²` for every packed row; bitwise equal to
/// calling [`crate::Matrix::sq_dist_hot`] per row.
///
/// # Panics
///
/// Panics (debug) unless `point.len() == inter.dims()` and
/// `out.len() == inter.rows()`.
pub fn sq_dist_batch(point: &[f64], inter: &InterleavedRows, out: &mut [f64]) {
    debug_assert_eq!(point.len(), inter.d);
    debug_assert_eq!(out.len(), inter.rows);
    match inter.tier {
        SimdTier::Scalar => {
            for (o, row) in out.iter_mut().zip(inter.data.chunks_exact(inter.d.max(1))) {
                *o = crate::Matrix::sq_dist_hot(point, row);
            }
        }
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe {
            x86::sq_dist_batch_sse2(point, &inter.data, inter.d, inter.rows, out);
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe {
            x86::sq_dist_batch_avx2(point, &inter.data, inter.d, inter.rows, out);
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector tiers are only detected on x86_64"),
    }
}

/// `out[r] = vec · row_r` for every packed row; bitwise equal to the scalar
/// `row.iter().map(..).sum()` fold per row. The PCA projection kernel
/// (`vec` is the centred sample, rows are the principal components).
///
/// # Panics
///
/// Panics (debug) unless `vec.len() == inter.dims()` and
/// `out.len() == inter.rows()`.
pub fn dot_batch(vec: &[f64], inter: &InterleavedRows, out: &mut [f64]) {
    debug_assert_eq!(vec.len(), inter.d);
    debug_assert_eq!(out.len(), inter.rows);
    match inter.tier {
        SimdTier::Scalar => {
            for (o, row) in out.iter_mut().zip(inter.data.chunks_exact(inter.d.max(1))) {
                *o = vec.iter().zip(row).map(|(&x, &c)| x * c).sum();
            }
        }
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe {
            x86::dot_batch_sse2(vec, &inter.data, inter.d, inter.rows, out);
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe {
            x86::dot_batch_avx2(vec, &inter.data, inter.d, inter.rows, out);
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector tiers are only detected on x86_64"),
    }
}

/// Points stored column-major (`data[j·n + i]` is coordinate `j` of point
/// `i`) so one vector op reads the same coordinate of `lanes` consecutive
/// points. Built once per K-Means fit; ~`n·d` doubles.
#[derive(Debug, Clone)]
pub struct TransposedPoints {
    tier: SimdTier,
    n: usize,
    d: usize,
    data: Vec<f64>,
}

impl TransposedPoints {
    /// Transposes `n` row-major points of width `d` for `tier`.
    pub fn build(tier: SimdTier, flat: &[f64], n: usize, d: usize) -> Self {
        debug_assert_eq!(flat.len(), n * d);
        let mut data = vec![0.0; n * d];
        for i in 0..n {
            for j in 0..d {
                data[j * n + i] = flat[i * d + j];
            }
        }
        Self { tier, n, d, data }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Point width (dimensions).
    pub fn dims(&self) -> usize {
        self.d
    }
}

/// `out[i] = ‖x_i − c‖²` for every point; bitwise equal to the scalar
/// per-row [`crate::Matrix::sq_dist_hot`] sweep.
///
/// # Panics
///
/// Panics (debug) unless `c.len() == xt.dims()` and `out.len() == xt.len()`.
pub fn sq_dist_to_point(xt: &TransposedPoints, c: &[f64], out: &mut [f64]) {
    debug_assert_eq!(c.len(), xt.d);
    debug_assert_eq!(out.len(), xt.n);
    match xt.tier {
        SimdTier::Scalar => scalar_sq_dist_to_point(xt, c, 0, out),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe { x86::sq_dist_to_point_sse2(xt, c, out) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { x86::sq_dist_to_point_avx2(xt, c, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector tiers are only detected on x86_64"),
    }
}

/// `d2[i] = min(d2[i], ‖x_i − c‖²)`, skipping points whose cached-norm
/// lower bound already exceeds `d2[i]` — the k-means++ seeding sweep,
/// bitwise equal to the pruned scalar loop.
///
/// Blocks where only *some* lanes prune still compute every lane: the
/// pruning bound guarantees a pruned lane's true distance exceeds its
/// `d2[i]`, so the blind vector min leaves it unchanged — the discarded
/// work changes no bits (asserted by the parity suite alongside the
/// `norm_lower_bound` soundness property).
///
/// # Panics
///
/// Panics (debug) unless `c.len() == xt.dims()` and `point_norms.len() ==
/// d2.len() == xt.len()`.
pub fn min_d2_update(
    xt: &TransposedPoints,
    c: &[f64],
    c_norm: f64,
    point_norms: &[f64],
    d2: &mut [f64],
) {
    debug_assert_eq!(c.len(), xt.d);
    debug_assert_eq!(point_norms.len(), xt.n);
    debug_assert_eq!(d2.len(), xt.n);
    match xt.tier {
        SimdTier::Scalar => scalar_min_d2_update(xt, c, c_norm, point_norms, 0, d2),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe { x86::min_d2_update_sse41(xt, c, c_norm, point_norms, d2) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { x86::min_d2_update_avx2(xt, c, c_norm, point_norms, d2) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector tiers are only detected on x86_64"),
    }
}

/// Scalar remainder shared by every [`sq_dist_to_point`] tier: points
/// `from..` via strided reads, the exact `sq_dist_hot` op order.
fn scalar_sq_dist_to_point(xt: &TransposedPoints, c: &[f64], from: usize, out: &mut [f64]) {
    for i in from..xt.n {
        let mut acc = 0.0;
        for (j, &cj) in c.iter().enumerate() {
            let diff = xt.data[j * xt.n + i] - cj;
            acc += diff * diff;
        }
        out[i] = acc;
    }
}

/// Scalar remainder shared by every [`min_d2_update`] tier.
fn scalar_min_d2_update(
    xt: &TransposedPoints,
    c: &[f64],
    c_norm: f64,
    point_norms: &[f64],
    from: usize,
    d2: &mut [f64],
) {
    for i in from..xt.n {
        if norm_lower_bound(point_norms[i], c_norm) > d2[i] {
            continue;
        }
        let mut acc = 0.0;
        for (j, &cj) in c.iter().enumerate() {
            let diff = xt.data[j * xt.n + i] - cj;
            acc += diff * diff;
        }
        if acc < d2[i] {
            d2[i] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Hamerly bound reconstruction: the K-Means per-point prune test
// ---------------------------------------------------------------------------

/// Reconstructs one point's Hamerly bounds from its stored bounds and the
/// drift accumulators — the scalar reference every [`prune_survivors`]
/// lane must match bitwise. `cd` is the assigned centroid's accumulated
/// drift, `ce` the accumulated maximum drift over the *other* centroids
/// (the assigned centroid cannot be the second-closest, so its own travel
/// never decays the lower bound), and `cum_max` the accumulated global
/// maximum drift, used only to scale the error padding. Returns the
/// padded `(upper, lower)` pair; `±∞` sentinels pass through the lower
/// bound unpadded (padding arithmetic on infinities would produce NaN).
#[inline]
pub fn reconstruct_bounds(
    upper: f64,
    snap_upper: f64,
    lower: f64,
    snap_lower: f64,
    cd: f64,
    ce: f64,
    cum_max: f64,
) -> (f64, f64) {
    let u = (upper + (cd - snap_upper)) * (1.0 + BOUND_PAD) + cd * CUM_PAD;
    let base = lower - (ce - snap_lower);
    let l = if base.is_finite() {
        base - BOUND_PAD * base.abs() - cum_max * CUM_PAD
    } else {
        base
    };
    (u, l)
}

/// One point whose reconstructed bounds failed the prune test, emitted by
/// [`prune_survivors`] for the scalar tighten/scan continuation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Survivor {
    /// Chunk-relative point index.
    pub index: u32,
    /// Reconstructed (padded) upper bound.
    pub u: f64,
    /// Reconstructed (padded) lower bound.
    pub l: f64,
}

/// Borrowed views of the assignment state one [`prune_survivors`] call
/// reads: the chunk's stored bounds/snapshots/labels (parallel slices of
/// equal length) plus the whole per-centroid drift and separation tables.
#[derive(Debug)]
pub struct HamerlySlices<'a> {
    /// Stored upper bounds.
    pub upper: &'a [f64],
    /// `cum_drift[label]` snapshots taken when `upper` was stored.
    pub snap_upper: &'a [f64],
    /// Stored lower bounds.
    pub lower: &'a [f64],
    /// `cum_max` snapshots taken when `lower` was stored.
    pub snap_lower: &'a [f64],
    /// Assigned centroid per point.
    pub labels: &'a [usize],
    /// Per-centroid accumulated padded drift (indexed by label).
    pub cum_drift: &'a [f64],
    /// Per-centroid accumulated maximum drift over the *other* centroids
    /// (indexed by label), decaying the lower bound.
    pub cum_excl: &'a [f64],
    /// Per-centroid Hamerly separation bound (indexed by label).
    pub s_half: &'a [f64],
    /// Accumulated per-iteration maximum drift (shared by all points),
    /// scaling the reconstruction error padding.
    pub cum_max: f64,
}

/// Reconstructs every point's Hamerly bounds and evaluates the prune test,
/// appending a [`Survivor`] (in index order) for each point that must
/// proceed to the tighten/scan path.
///
/// Lanewise identical to [`reconstruct_bounds`] plus the scalar
/// `u < l || u < s_half` comparison (strict `<`; NaN bounds therefore
/// never prune, exactly like the scalar code) — one call covers a whole
/// assignment chunk, so the vector tiers amortise their dispatch over
/// hundreds of points.
///
/// # Panics
///
/// Panics unless the four bound slices and `labels` share one length (the
/// vector kernels read them unchecked against it).
pub fn prune_survivors(tier: SimdTier, hs: &HamerlySlices<'_>, out: &mut Vec<Survivor>) {
    let n = hs.upper.len();
    assert_eq!(hs.snap_upper.len(), n);
    assert_eq!(hs.lower.len(), n);
    assert_eq!(hs.snap_lower.len(), n);
    assert_eq!(hs.labels.len(), n);
    let from = match tier {
        SimdTier::Scalar => 0,
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe { x86::prune_survivors_sse41(hs, out) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { x86::prune_survivors_avx2(hs, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector tiers are only detected on x86_64"),
    };
    for i in from..n {
        let label = hs.labels[i];
        let (u, l) = reconstruct_bounds(
            hs.upper[i],
            hs.snap_upper[i],
            hs.lower[i],
            hs.snap_lower[i],
            hs.cum_drift[label],
            hs.cum_excl[label],
            hs.cum_max,
        );
        if !(u < l || u < hs.s_half[label]) {
            out.push(Survivor {
                index: i as u32,
                u,
                l,
            });
        }
    }
}

/// Full centroid scans for a batch of rows, lane = point.
///
/// For each entry of `indices` (a row index into the flat `data`, which has
/// `d` columns), appends `(winner, best_d², second_d²)` to `results` with
/// exactly the scalar selection semantics: centroids visited in ascending
/// order, strict `<` against the running best — so the first of equal
/// distances wins and NaN distances never place. Distances accumulate
/// `(x_j − c_j)²` in ascending-dimension order with no FMA, bitwise equal
/// to the scalar fold.
///
/// # Panics
///
/// Panics if `centroids.len() != k * d` or any index reaches past `data`
/// (the vector kernels read rows unchecked).
pub fn scan_points(
    tier: SimdTier,
    data: &[f64],
    d: usize,
    indices: &[u32],
    centroids: &[f64],
    k: usize,
    results: &mut Vec<(u32, f64, f64)>,
) {
    assert!(d > 0, "scan_points needs at least one column");
    assert_eq!(centroids.len(), k * d);
    assert!(indices.iter().all(|&i| i as usize * d + d <= data.len()));
    let from = match tier {
        SimdTier::Scalar => 0,
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe { x86::scan_points_sse41(data, d, indices, centroids, k, results) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { x86::scan_points_avx2(data, d, indices, centroids, k, results) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector tiers are only detected on x86_64"),
    };
    for &i in &indices[from..] {
        let row = &data[i as usize * d..i as usize * d + d];
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        let mut second_d = f64::INFINITY;
        for (c, cent) in centroids.chunks_exact(d).enumerate() {
            let dist = crate::Matrix::sq_dist_hot(row, cent);
            if dist < best_d {
                second_d = best_d;
                best_d = dist;
                best = c as u32;
            } else if dist < second_d {
                second_d = dist;
            }
        }
        results.push((best, best_d, second_d));
    }
}

// ---------------------------------------------------------------------------
// Fast-math tier: reassociated single reductions
// ---------------------------------------------------------------------------

/// Squared Euclidean distance with the reassociated fast-math reduction.
///
/// Differs from [`crate::Matrix::sq_dist_hot`] by at most `2 · d · ε`
/// relative (terms are non-negative, so the absolute-term sum *is* the
/// result) — enforced by the parity suite. Falls back to the scalar order
/// on the scalar tier.
pub fn sq_dist_fast(tier: SimdTier, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    match tier {
        SimdTier::Scalar => crate::Matrix::sq_dist_hot(a, b),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe { x86::sq_dist_fast_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { x86::sq_dist_fast_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector tiers are only detected on x86_64"),
    }
}

/// Dot product with the reassociated fast-math reduction; differs from the
/// scalar left-to-right fold by at most `2 · d · ε · Σ|aᵢ·bᵢ|`.
pub fn dot_fast(tier: SimdTier, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    match tier {
        SimdTier::Scalar => a.iter().zip(b).map(|(&x, &y)| x * y).sum(),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse41 => unsafe { x86::dot_fast_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { x86::dot_fast_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector tiers are only detected on x86_64"),
    }
}

/// One pairwise squared distance under the *process* configuration: the
/// fast-math kernel when `--fast-math` is on (and a vector tier is active),
/// the exact scalar order otherwise.
///
/// Only reporting-grade paths call this (inertia, medoids, scatter
/// diagnostics) — never the Hamerly bounds logic or streaming checkpoint
/// state, which stay on the exact order unconditionally (see DESIGN.md).
pub fn sq_dist_auto(a: &[f64], b: &[f64]) -> f64 {
    if fast_math() {
        sq_dist_fast(active_tier(), a, b)
    } else {
        crate::Matrix::sq_dist_hot(a, b)
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Vector implementations. Safety contract throughout: the named target
    //! feature is present (dispatchers check the detected tier first).

    use super::{HamerlySlices, Survivor, TransposedPoints, BOUND_PAD, CUM_PAD};
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires SSE2 (baseline on `x86_64`).
    pub unsafe fn sq_dist_batch_sse2(point: &[f64], data: &[f64], d: usize, rows: usize, out: &mut [f64]) {
        unsafe {
            let blocks = rows.div_ceil(2);
            for b in 0..blocks {
                let base = b * d * 2;
                let mut acc = _mm_setzero_pd();
                for (j, &pj) in point.iter().enumerate() {
                    let p = _mm_set1_pd(pj);
                    let c = _mm_loadu_pd(data.as_ptr().add(base + j * 2));
                    let diff = _mm_sub_pd(p, c);
                    acc = _mm_add_pd(acc, _mm_mul_pd(diff, diff));
                }
                let start = b * 2;
                if start + 2 <= rows {
                    _mm_storeu_pd(out.as_mut_ptr().add(start), acc);
                } else {
                    let mut tmp = [0.0f64; 2];
                    _mm_storeu_pd(tmp.as_mut_ptr(), acc);
                    out[start..rows].copy_from_slice(&tmp[..rows - start]);
                }
            }
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dist_batch_avx2(point: &[f64], data: &[f64], d: usize, rows: usize, out: &mut [f64]) {
        unsafe {
            let blocks = rows.div_ceil(4);
            for b in 0..blocks {
                let base = b * d * 4;
                let mut acc = _mm256_setzero_pd();
                for (j, &pj) in point.iter().enumerate() {
                    let p = _mm256_set1_pd(pj);
                    let c = _mm256_loadu_pd(data.as_ptr().add(base + j * 4));
                    let diff = _mm256_sub_pd(p, c);
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
                }
                let start = b * 4;
                if start + 4 <= rows {
                    _mm256_storeu_pd(out.as_mut_ptr().add(start), acc);
                } else {
                    let mut tmp = [0.0f64; 4];
                    _mm256_storeu_pd(tmp.as_mut_ptr(), acc);
                    out[start..rows].copy_from_slice(&tmp[..rows - start]);
                }
            }
        }
    }

    /// # Safety
    /// Requires SSE2.
    pub unsafe fn dot_batch_sse2(vec: &[f64], data: &[f64], d: usize, rows: usize, out: &mut [f64]) {
        unsafe {
            let blocks = rows.div_ceil(2);
            for b in 0..blocks {
                let base = b * d * 2;
                let mut acc = _mm_setzero_pd();
                for (j, &vj) in vec.iter().enumerate() {
                    let v = _mm_set1_pd(vj);
                    let c = _mm_loadu_pd(data.as_ptr().add(base + j * 2));
                    acc = _mm_add_pd(acc, _mm_mul_pd(v, c));
                }
                let start = b * 2;
                if start + 2 <= rows {
                    _mm_storeu_pd(out.as_mut_ptr().add(start), acc);
                } else {
                    let mut tmp = [0.0f64; 2];
                    _mm_storeu_pd(tmp.as_mut_ptr(), acc);
                    out[start..rows].copy_from_slice(&tmp[..rows - start]);
                }
            }
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_batch_avx2(vec: &[f64], data: &[f64], d: usize, rows: usize, out: &mut [f64]) {
        unsafe {
            let blocks = rows.div_ceil(4);
            for b in 0..blocks {
                let base = b * d * 4;
                let mut acc = _mm256_setzero_pd();
                for (j, &vj) in vec.iter().enumerate() {
                    let v = _mm256_set1_pd(vj);
                    let c = _mm256_loadu_pd(data.as_ptr().add(base + j * 4));
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, c));
                }
                let start = b * 4;
                if start + 4 <= rows {
                    _mm256_storeu_pd(out.as_mut_ptr().add(start), acc);
                } else {
                    let mut tmp = [0.0f64; 4];
                    _mm256_storeu_pd(tmp.as_mut_ptr(), acc);
                    out[start..rows].copy_from_slice(&tmp[..rows - start]);
                }
            }
        }
    }

    /// # Safety
    /// Requires SSE2.
    pub unsafe fn sq_dist_to_point_sse2(xt: &TransposedPoints, c: &[f64], out: &mut [f64]) {
        unsafe {
            let n = xt.n;
            let pairs = n / 2;
            for b in 0..pairs {
                let i = b * 2;
                let mut acc = _mm_setzero_pd();
                for (j, &cj) in c.iter().enumerate() {
                    let x = _mm_loadu_pd(xt.data.as_ptr().add(j * n + i));
                    let diff = _mm_sub_pd(x, _mm_set1_pd(cj));
                    acc = _mm_add_pd(acc, _mm_mul_pd(diff, diff));
                }
                _mm_storeu_pd(out.as_mut_ptr().add(i), acc);
            }
            super::scalar_sq_dist_to_point(xt, c, pairs * 2, out);
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dist_to_point_avx2(xt: &TransposedPoints, c: &[f64], out: &mut [f64]) {
        unsafe {
            let n = xt.n;
            let quads = n / 4;
            for b in 0..quads {
                let i = b * 4;
                let mut acc = _mm256_setzero_pd();
                for (j, &cj) in c.iter().enumerate() {
                    let x = _mm256_loadu_pd(xt.data.as_ptr().add(j * n + i));
                    let diff = _mm256_sub_pd(x, _mm256_set1_pd(cj));
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
                }
                _mm256_storeu_pd(out.as_mut_ptr().add(i), acc);
            }
            super::scalar_sq_dist_to_point(xt, c, quads * 4, out);
        }
    }

    /// # Safety
    /// Requires SSE4.1 (`blendvpd`).
    #[target_feature(enable = "sse4.1")]
    pub unsafe fn min_d2_update_sse41(
        xt: &TransposedPoints,
        c: &[f64],
        c_norm: f64,
        point_norms: &[f64],
        d2: &mut [f64],
    ) {
        unsafe {
            let n = xt.n;
            let sign = _mm_set1_pd(-0.0);
            let eps = _mm_set1_pd(1e-12);
            let one_m_eps = _mm_set1_pd(1.0 - 1e-12);
            let zero = _mm_setzero_pd();
            let ncv = _mm_set1_pd(c_norm);
            let pairs = n / 2;
            for b in 0..pairs {
                let i = b * 2;
                let nx = _mm_loadu_pd(point_norms.as_ptr().add(i));
                // norm_lower_bound, lanewise: same ops, same order.
                let m = _mm_sub_pd(
                    _mm_andnot_pd(sign, _mm_sub_pd(nx, ncv)),
                    _mm_mul_pd(_mm_add_pd(nx, ncv), eps),
                );
                let mm = _mm_mul_pd(_mm_mul_pd(m, m), one_m_eps);
                let lb = _mm_blendv_pd(zero, mm, _mm_cmpgt_pd(m, zero));
                let d2v = _mm_loadu_pd(d2.as_ptr().add(i));
                if _mm_movemask_pd(_mm_cmpgt_pd(lb, d2v)) == 0b11 {
                    continue;
                }
                let mut acc = _mm_setzero_pd();
                for (j, &cj) in c.iter().enumerate() {
                    let x = _mm_loadu_pd(xt.data.as_ptr().add(j * n + i));
                    let diff = _mm_sub_pd(x, _mm_set1_pd(cj));
                    acc = _mm_add_pd(acc, _mm_mul_pd(diff, diff));
                }
                let lt = _mm_cmplt_pd(acc, d2v);
                _mm_storeu_pd(d2.as_mut_ptr().add(i), _mm_blendv_pd(d2v, acc, lt));
            }
            super::scalar_min_d2_update(xt, c, c_norm, point_norms, pairs * 2, d2);
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn min_d2_update_avx2(
        xt: &TransposedPoints,
        c: &[f64],
        c_norm: f64,
        point_norms: &[f64],
        d2: &mut [f64],
    ) {
        unsafe {
            let n = xt.n;
            let sign = _mm256_set1_pd(-0.0);
            let eps = _mm256_set1_pd(1e-12);
            let one_m_eps = _mm256_set1_pd(1.0 - 1e-12);
            let zero = _mm256_setzero_pd();
            let ncv = _mm256_set1_pd(c_norm);
            let quads = n / 4;
            for b in 0..quads {
                let i = b * 4;
                let nx = _mm256_loadu_pd(point_norms.as_ptr().add(i));
                let m = _mm256_sub_pd(
                    _mm256_andnot_pd(sign, _mm256_sub_pd(nx, ncv)),
                    _mm256_mul_pd(_mm256_add_pd(nx, ncv), eps),
                );
                let mm = _mm256_mul_pd(_mm256_mul_pd(m, m), one_m_eps);
                let lb = _mm256_blendv_pd(zero, mm, _mm256_cmp_pd(m, zero, _CMP_GT_OQ));
                let d2v = _mm256_loadu_pd(d2.as_ptr().add(i));
                if _mm256_movemask_pd(_mm256_cmp_pd(lb, d2v, _CMP_GT_OQ)) == 0b1111 {
                    continue;
                }
                let mut acc = _mm256_setzero_pd();
                for (j, &cj) in c.iter().enumerate() {
                    let x = _mm256_loadu_pd(xt.data.as_ptr().add(j * n + i));
                    let diff = _mm256_sub_pd(x, _mm256_set1_pd(cj));
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
                }
                let lt = _mm256_cmp_pd(acc, d2v, _CMP_LT_OQ);
                _mm256_storeu_pd(d2.as_mut_ptr().add(i), _mm256_blendv_pd(d2v, acc, lt));
            }
            super::scalar_min_d2_update(xt, c, c_norm, point_norms, quads * 4, d2);
        }
    }

    /// # Safety
    /// Requires SSE4.1 (`blendvpd`).
    ///
    /// Returns the number of leading points handled; the dispatcher runs
    /// the scalar path from there.
    #[target_feature(enable = "sse4.1")]
    pub unsafe fn prune_survivors_sse41(
        hs: &HamerlySlices<'_>,
        out: &mut Vec<Survivor>,
    ) -> usize {
        unsafe {
            let n = hs.upper.len();
            let pad1 = _mm_set1_pd(1.0 + BOUND_PAD);
            let bpad = _mm_set1_pd(BOUND_PAD);
            let cpad = _mm_set1_pd(CUM_PAD);
            let cm_pad = _mm_set1_pd(hs.cum_max * CUM_PAD);
            let sign = _mm_set1_pd(-0.0);
            let inf = _mm_set1_pd(f64::INFINITY);
            let pairs = n / 2;
            for b in 0..pairs {
                let i = b * 2;
                let l0 = *hs.labels.get_unchecked(i);
                let l1 = *hs.labels.get_unchecked(i + 1);
                let cd = _mm_set_pd(hs.cum_drift[l1], hs.cum_drift[l0]);
                let up = _mm_loadu_pd(hs.upper.as_ptr().add(i));
                let su = _mm_loadu_pd(hs.snap_upper.as_ptr().add(i));
                let u = _mm_add_pd(
                    _mm_mul_pd(_mm_add_pd(up, _mm_sub_pd(cd, su)), pad1),
                    _mm_mul_pd(cd, cpad),
                );
                let lo = _mm_loadu_pd(hs.lower.as_ptr().add(i));
                let sl = _mm_loadu_pd(hs.snap_lower.as_ptr().add(i));
                let ce = _mm_set_pd(hs.cum_excl[l1], hs.cum_excl[l0]);
                let base = _mm_sub_pd(lo, _mm_sub_pd(ce, sl));
                let ab = _mm_andnot_pd(sign, base);
                let finite = _mm_cmplt_pd(ab, inf);
                let l_fin = _mm_sub_pd(_mm_sub_pd(base, _mm_mul_pd(bpad, ab)), cm_pad);
                let l = _mm_blendv_pd(base, l_fin, finite);
                let sh = _mm_set_pd(hs.s_half[l1], hs.s_half[l0]);
                let prune = _mm_or_pd(_mm_cmplt_pd(u, l), _mm_cmplt_pd(u, sh));
                let pm = _mm_movemask_pd(prune) as u8;
                if pm != 0b11 {
                    let mut tu = [0.0f64; 2];
                    let mut tl = [0.0f64; 2];
                    _mm_storeu_pd(tu.as_mut_ptr(), u);
                    _mm_storeu_pd(tl.as_mut_ptr(), l);
                    let mut keep = (!pm) & 0b11;
                    while keep != 0 {
                        let lane = keep.trailing_zeros() as usize;
                        keep &= keep - 1;
                        out.push(Survivor {
                            index: (i + lane) as u32,
                            u: tu[lane],
                            l: tl[lane],
                        });
                    }
                }
            }
            pairs * 2
        }
    }

    /// # Safety
    /// Requires AVX2.
    ///
    /// Returns the number of leading points handled; the dispatcher runs
    /// the scalar path from there.
    #[target_feature(enable = "avx2")]
    pub unsafe fn prune_survivors_avx2(
        hs: &HamerlySlices<'_>,
        out: &mut Vec<Survivor>,
    ) -> usize {
        unsafe {
            let n = hs.upper.len();
            let pad1 = _mm256_set1_pd(1.0 + BOUND_PAD);
            let bpad = _mm256_set1_pd(BOUND_PAD);
            let cpad = _mm256_set1_pd(CUM_PAD);
            let cm_pad = _mm256_set1_pd(hs.cum_max * CUM_PAD);
            let sign = _mm256_set1_pd(-0.0);
            let inf = _mm256_set1_pd(f64::INFINITY);
            let quads = n / 4;
            for b in 0..quads {
                let i = b * 4;
                let l0 = *hs.labels.get_unchecked(i);
                let l1 = *hs.labels.get_unchecked(i + 1);
                let l2 = *hs.labels.get_unchecked(i + 2);
                let l3 = *hs.labels.get_unchecked(i + 3);
                let cd = _mm256_set_pd(
                    hs.cum_drift[l3],
                    hs.cum_drift[l2],
                    hs.cum_drift[l1],
                    hs.cum_drift[l0],
                );
                let up = _mm256_loadu_pd(hs.upper.as_ptr().add(i));
                let su = _mm256_loadu_pd(hs.snap_upper.as_ptr().add(i));
                let u = _mm256_add_pd(
                    _mm256_mul_pd(_mm256_add_pd(up, _mm256_sub_pd(cd, su)), pad1),
                    _mm256_mul_pd(cd, cpad),
                );
                let lo = _mm256_loadu_pd(hs.lower.as_ptr().add(i));
                let sl = _mm256_loadu_pd(hs.snap_lower.as_ptr().add(i));
                let ce = _mm256_set_pd(
                    hs.cum_excl[l3],
                    hs.cum_excl[l2],
                    hs.cum_excl[l1],
                    hs.cum_excl[l0],
                );
                let base = _mm256_sub_pd(lo, _mm256_sub_pd(ce, sl));
                let ab = _mm256_andnot_pd(sign, base);
                let finite = _mm256_cmp_pd(ab, inf, _CMP_LT_OQ);
                let l_fin = _mm256_sub_pd(_mm256_sub_pd(base, _mm256_mul_pd(bpad, ab)), cm_pad);
                let l = _mm256_blendv_pd(base, l_fin, finite);
                let sh = _mm256_set_pd(
                    hs.s_half[l3],
                    hs.s_half[l2],
                    hs.s_half[l1],
                    hs.s_half[l0],
                );
                let prune = _mm256_or_pd(
                    _mm256_cmp_pd(u, l, _CMP_LT_OQ),
                    _mm256_cmp_pd(u, sh, _CMP_LT_OQ),
                );
                let pm = _mm256_movemask_pd(prune) as u8;
                if pm != 0b1111 {
                    let mut tu = [0.0f64; 4];
                    let mut tl = [0.0f64; 4];
                    _mm256_storeu_pd(tu.as_mut_ptr(), u);
                    _mm256_storeu_pd(tl.as_mut_ptr(), l);
                    let mut keep = (!pm) & 0b1111;
                    while keep != 0 {
                        let lane = keep.trailing_zeros() as usize;
                        keep &= keep - 1;
                        out.push(Survivor {
                            index: (i + lane) as u32,
                            u: tu[lane],
                            l: tl[lane],
                        });
                    }
                }
            }
            quads * 4
        }
    }

    /// # Safety
    /// Requires SSE4.1 (`blendv`).
    #[target_feature(enable = "sse4.1")]
    pub unsafe fn scan_points_sse41(
        data: &[f64],
        d: usize,
        indices: &[u32],
        centroids: &[f64],
        k: usize,
        results: &mut Vec<(u32, f64, f64)>,
    ) -> usize {
        unsafe {
            let pairs = indices.len() / 2;
            let mut tmp = vec![0.0f64; d * 2];
            for p in 0..pairs {
                let idx = &indices[p * 2..p * 2 + 2];
                for (lane, &i) in idx.iter().enumerate() {
                    let base = i as usize * d;
                    for j in 0..d {
                        tmp[j * 2 + lane] = *data.get_unchecked(base + j);
                    }
                }
                let mut best_d = _mm_set1_pd(f64::INFINITY);
                let mut second_d = _mm_set1_pd(f64::INFINITY);
                let mut best_i = _mm_setzero_pd();
                for c in 0..k {
                    let cbase = c * d;
                    let mut acc = _mm_setzero_pd();
                    for j in 0..d {
                        let x = _mm_loadu_pd(tmp.as_ptr().add(j * 2));
                        let cv = _mm_set1_pd(*centroids.get_unchecked(cbase + j));
                        let diff = _mm_sub_pd(x, cv);
                        acc = _mm_add_pd(acc, _mm_mul_pd(diff, diff));
                    }
                    // Scalar selection order per lane: `if d < best` first
                    // (second inherits the old best), `else if d < second`
                    // masked by the first test's complement.
                    let m = _mm_cmplt_pd(acc, best_d);
                    second_d = _mm_blendv_pd(second_d, best_d, m);
                    best_d = _mm_blendv_pd(best_d, acc, m);
                    best_i = _mm_blendv_pd(best_i, _mm_set1_pd(c as f64), m);
                    let m2 = _mm_andnot_pd(m, _mm_cmplt_pd(acc, second_d));
                    second_d = _mm_blendv_pd(second_d, acc, m2);
                }
                let mut bd = [0.0f64; 2];
                let mut sd = [0.0f64; 2];
                let mut bi = [0.0f64; 2];
                _mm_storeu_pd(bd.as_mut_ptr(), best_d);
                _mm_storeu_pd(sd.as_mut_ptr(), second_d);
                _mm_storeu_pd(bi.as_mut_ptr(), best_i);
                for lane in 0..2 {
                    results.push((bi[lane] as u32, bd[lane], sd[lane]));
                }
            }
            pairs * 2
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scan_points_avx2(
        data: &[f64],
        d: usize,
        indices: &[u32],
        centroids: &[f64],
        k: usize,
        results: &mut Vec<(u32, f64, f64)>,
    ) -> usize {
        unsafe {
            let n = indices.len();
            let mut tmp = vec![0.0f64; d * 8];
            let mut done = 0usize;
            // Two quads at a time: a lone accumulator serialises on the
            // 4-cycle add latency (k·d dependent adds per point batch), so
            // two independent chains nearly double the throughput.
            while done + 8 <= n {
                let idx = &indices[done..done + 8];
                for (lane, &i) in idx.iter().enumerate() {
                    let base = i as usize * d;
                    let col = (lane / 4) * 4 + lane % 4;
                    for j in 0..d {
                        tmp[j * 8 + col] = *data.get_unchecked(base + j);
                    }
                }
                let mut best_d0 = _mm256_set1_pd(f64::INFINITY);
                let mut best_d1 = _mm256_set1_pd(f64::INFINITY);
                let mut second_d0 = _mm256_set1_pd(f64::INFINITY);
                let mut second_d1 = _mm256_set1_pd(f64::INFINITY);
                let mut best_i0 = _mm256_setzero_pd();
                let mut best_i1 = _mm256_setzero_pd();
                for c in 0..k {
                    let cbase = c * d;
                    let mut acc0 = _mm256_setzero_pd();
                    let mut acc1 = _mm256_setzero_pd();
                    for j in 0..d {
                        let cv = _mm256_set1_pd(*centroids.get_unchecked(cbase + j));
                        let x0 = _mm256_loadu_pd(tmp.as_ptr().add(j * 8));
                        let x1 = _mm256_loadu_pd(tmp.as_ptr().add(j * 8 + 4));
                        let d0 = _mm256_sub_pd(x0, cv);
                        let d1 = _mm256_sub_pd(x1, cv);
                        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
                        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
                    }
                    // Scalar selection order per lane (see the SSE4.1 twin).
                    let cvi = _mm256_set1_pd(c as f64);
                    let m0 = _mm256_cmp_pd(acc0, best_d0, _CMP_LT_OQ);
                    second_d0 = _mm256_blendv_pd(second_d0, best_d0, m0);
                    best_d0 = _mm256_blendv_pd(best_d0, acc0, m0);
                    best_i0 = _mm256_blendv_pd(best_i0, cvi, m0);
                    let m20 = _mm256_andnot_pd(m0, _mm256_cmp_pd(acc0, second_d0, _CMP_LT_OQ));
                    second_d0 = _mm256_blendv_pd(second_d0, acc0, m20);
                    let m1 = _mm256_cmp_pd(acc1, best_d1, _CMP_LT_OQ);
                    second_d1 = _mm256_blendv_pd(second_d1, best_d1, m1);
                    best_d1 = _mm256_blendv_pd(best_d1, acc1, m1);
                    best_i1 = _mm256_blendv_pd(best_i1, cvi, m1);
                    let m21 = _mm256_andnot_pd(m1, _mm256_cmp_pd(acc1, second_d1, _CMP_LT_OQ));
                    second_d1 = _mm256_blendv_pd(second_d1, acc1, m21);
                }
                let mut bd = [0.0f64; 8];
                let mut sd = [0.0f64; 8];
                let mut bi = [0.0f64; 8];
                _mm256_storeu_pd(bd.as_mut_ptr(), best_d0);
                _mm256_storeu_pd(bd.as_mut_ptr().add(4), best_d1);
                _mm256_storeu_pd(sd.as_mut_ptr(), second_d0);
                _mm256_storeu_pd(sd.as_mut_ptr().add(4), second_d1);
                _mm256_storeu_pd(bi.as_mut_ptr(), best_i0);
                _mm256_storeu_pd(bi.as_mut_ptr().add(4), best_i1);
                for lane in 0..8 {
                    results.push((bi[lane] as u32, bd[lane], sd[lane]));
                }
                done += 8;
            }
            if done + 4 <= n {
                let idx = &indices[done..done + 4];
                for (lane, &i) in idx.iter().enumerate() {
                    let base = i as usize * d;
                    for j in 0..d {
                        tmp[j * 4 + lane] = *data.get_unchecked(base + j);
                    }
                }
                let mut best_d = _mm256_set1_pd(f64::INFINITY);
                let mut second_d = _mm256_set1_pd(f64::INFINITY);
                let mut best_i = _mm256_setzero_pd();
                for c in 0..k {
                    let cbase = c * d;
                    let mut acc = _mm256_setzero_pd();
                    for j in 0..d {
                        let x = _mm256_loadu_pd(tmp.as_ptr().add(j * 4));
                        let cv = _mm256_set1_pd(*centroids.get_unchecked(cbase + j));
                        let diff = _mm256_sub_pd(x, cv);
                        acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
                    }
                    let m = _mm256_cmp_pd(acc, best_d, _CMP_LT_OQ);
                    second_d = _mm256_blendv_pd(second_d, best_d, m);
                    best_d = _mm256_blendv_pd(best_d, acc, m);
                    best_i = _mm256_blendv_pd(best_i, _mm256_set1_pd(c as f64), m);
                    let m2 = _mm256_andnot_pd(m, _mm256_cmp_pd(acc, second_d, _CMP_LT_OQ));
                    second_d = _mm256_blendv_pd(second_d, acc, m2);
                }
                let mut bd = [0.0f64; 4];
                let mut sd = [0.0f64; 4];
                let mut bi = [0.0f64; 4];
                _mm256_storeu_pd(bd.as_mut_ptr(), best_d);
                _mm256_storeu_pd(sd.as_mut_ptr(), second_d);
                _mm256_storeu_pd(bi.as_mut_ptr(), best_i);
                for lane in 0..4 {
                    results.push((bi[lane] as u32, bd[lane], sd[lane]));
                }
                done += 4;
            }
            done
        }
    }

    /// # Safety
    /// Requires SSE2.
    pub unsafe fn sq_dist_fast_sse2(a: &[f64], b: &[f64]) -> f64 {
        unsafe {
            let d = a.len();
            let pairs = d / 2;
            let mut acc = _mm_setzero_pd();
            for k in 0..pairs {
                let i = k * 2;
                let diff = _mm_sub_pd(
                    _mm_loadu_pd(a.as_ptr().add(i)),
                    _mm_loadu_pd(b.as_ptr().add(i)),
                );
                acc = _mm_add_pd(acc, _mm_mul_pd(diff, diff));
            }
            let mut tmp = [0.0f64; 2];
            _mm_storeu_pd(tmp.as_mut_ptr(), acc);
            let mut s = tmp[0] + tmp[1];
            for i in pairs * 2..d {
                let diff = a[i] - b[i];
                s += diff * diff;
            }
            s
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_dist_fast_avx2(a: &[f64], b: &[f64]) -> f64 {
        unsafe {
            let d = a.len();
            let quads = d / 4;
            let mut acc = _mm256_setzero_pd();
            for k in 0..quads {
                let i = k * 4;
                let diff = _mm256_sub_pd(
                    _mm256_loadu_pd(a.as_ptr().add(i)),
                    _mm256_loadu_pd(b.as_ptr().add(i)),
                );
                acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
            }
            let mut tmp = [0.0f64; 4];
            _mm256_storeu_pd(tmp.as_mut_ptr(), acc);
            let mut s = (tmp[0] + tmp[1]) + (tmp[2] + tmp[3]);
            for i in quads * 4..d {
                let diff = a[i] - b[i];
                s += diff * diff;
            }
            s
        }
    }

    /// # Safety
    /// Requires SSE2.
    pub unsafe fn dot_fast_sse2(a: &[f64], b: &[f64]) -> f64 {
        unsafe {
            let d = a.len();
            let pairs = d / 2;
            let mut acc = _mm_setzero_pd();
            for k in 0..pairs {
                let i = k * 2;
                acc = _mm_add_pd(
                    acc,
                    _mm_mul_pd(_mm_loadu_pd(a.as_ptr().add(i)), _mm_loadu_pd(b.as_ptr().add(i))),
                );
            }
            let mut tmp = [0.0f64; 2];
            _mm_storeu_pd(tmp.as_mut_ptr(), acc);
            let mut s = tmp[0] + tmp[1];
            for i in pairs * 2..d {
                s += a[i] * b[i];
            }
            s
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_fast_avx2(a: &[f64], b: &[f64]) -> f64 {
        unsafe {
            let d = a.len();
            let quads = d / 4;
            let mut acc = _mm256_setzero_pd();
            for k in 0..quads {
                let i = k * 4;
                acc = _mm256_add_pd(
                    acc,
                    _mm256_mul_pd(
                        _mm256_loadu_pd(a.as_ptr().add(i)),
                        _mm256_loadu_pd(b.as_ptr().add(i)),
                    ),
                );
            }
            let mut tmp = [0.0f64; 4];
            _mm256_storeu_pd(tmp.as_mut_ptr(), acc);
            let mut s = (tmp[0] + tmp[1]) + (tmp[2] + tmp[3]);
            for i in quads * 4..d {
                s += a[i] * b[i];
            }
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use pka_stats::hash::UnitStream;

    /// Tiers actually runnable on this machine.
    pub(crate) fn runnable_tiers() -> Vec<SimdTier> {
        let mut tiers = vec![SimdTier::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse4.1") {
                tiers.push(SimdTier::Sse41);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                tiers.push(SimdTier::Avx2);
            }
        }
        tiers
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn sq_dist_batch_bitwise_all_shapes() {
        let mut rng = UnitStream::new(3);
        for d in 1..=9usize {
            for rows in [1usize, 2, 3, 4, 5, 7, 8, 13] {
                let flat: Vec<f64> = (0..rows * d).map(|_| rng.next_range(-1e3, 1e3)).collect();
                let point: Vec<f64> = (0..d).map(|_| rng.next_range(-1e3, 1e3)).collect();
                let reference: Vec<f64> = (0..rows)
                    .map(|r| Matrix::sq_dist_hot(&point, &flat[r * d..(r + 1) * d]))
                    .collect();
                for tier in runnable_tiers() {
                    let inter = InterleavedRows::build(tier, &flat, d);
                    let mut out = vec![0.0; rows];
                    sq_dist_batch(&point, &inter, &mut out);
                    assert_eq!(bits(&out), bits(&reference), "{tier:?} d={d} rows={rows}");
                }
            }
        }
    }

    #[test]
    fn batch_kernels_propagate_non_finite_inputs_bitwise() {
        let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 5e-324, -0.0, 1.0];
        // 6 rows × 3 dims cycling through the special values.
        let d = 3;
        let flat: Vec<f64> = (0..18).map(|i| specials[i % specials.len()]).collect();
        let point = [f64::INFINITY, -2.5, 5e-324];
        let reference: Vec<f64> = (0..6)
            .map(|r| Matrix::sq_dist_hot(&point, &flat[r * d..(r + 1) * d]))
            .collect();
        for tier in runnable_tiers() {
            let inter = InterleavedRows::build(tier, &flat, d);
            let mut out = vec![0.0; 6];
            sq_dist_batch(&point, &inter, &mut out);
            assert_eq!(bits(&out), bits(&reference), "{tier:?}");
        }
    }

    #[test]
    fn dot_batch_bitwise_all_shapes() {
        let mut rng = UnitStream::new(11);
        for d in 1..=9usize {
            for rows in [1usize, 2, 4, 5, 6, 11] {
                let flat: Vec<f64> = (0..rows * d).map(|_| rng.next_range(-10.0, 10.0)).collect();
                let v: Vec<f64> = (0..d).map(|_| rng.next_range(-10.0, 10.0)).collect();
                let reference: Vec<f64> = (0..rows)
                    .map(|r| {
                        v.iter()
                            .zip(&flat[r * d..(r + 1) * d])
                            .map(|(&x, &c)| x * c)
                            .sum()
                    })
                    .collect();
                for tier in runnable_tiers() {
                    let inter = InterleavedRows::build(tier, &flat, d);
                    let mut out = vec![0.0; rows];
                    dot_batch(&v, &inter, &mut out);
                    assert_eq!(bits(&out), bits(&reference), "{tier:?} d={d} rows={rows}");
                }
            }
        }
    }

    #[test]
    fn min_d2_update_bitwise_with_pruning() {
        let mut rng = UnitStream::new(29);
        for d in 1..=6usize {
            for n in [1usize, 2, 3, 4, 5, 9, 16, 33] {
                let flat: Vec<f64> = (0..n * d).map(|_| rng.next_range(-50.0, 50.0)).collect();
                let c: Vec<f64> = (0..d).map(|_| rng.next_range(-50.0, 50.0)).collect();
                let norms: Vec<f64> = (0..n)
                    .map(|i| Matrix::sq_norm(&flat[i * d..(i + 1) * d]).sqrt())
                    .collect();
                let c_norm = Matrix::sq_norm(&c).sqrt();
                // Tight d2 so pruning genuinely fires on some lanes.
                let d2_start: Vec<f64> = (0..n).map(|_| rng.next_range(0.0, 500.0)).collect();

                let mut reference = d2_start.clone();
                for i in 0..n {
                    if norm_lower_bound(norms[i], c_norm) > reference[i] {
                        continue;
                    }
                    let dd = Matrix::sq_dist_hot(&flat[i * d..(i + 1) * d], &c);
                    if dd < reference[i] {
                        reference[i] = dd;
                    }
                }
                for tier in runnable_tiers() {
                    let xt = TransposedPoints::build(tier, &flat, n, d);
                    let mut d2 = d2_start.clone();
                    min_d2_update(&xt, &c, c_norm, &norms, &mut d2);
                    assert_eq!(bits(&d2), bits(&reference), "{tier:?} d={d} n={n}");
                }
            }
        }
    }

    #[test]
    fn prune_survivors_bitwise_incl_sentinels() {
        let mut rng = UnitStream::new(57);
        // Odd lengths exercise every lane remainder.
        for n in [1usize, 2, 3, 4, 5, 7, 8, 13, 64, 129] {
            // Mix realistic bound magnitudes with the ±∞ first-iteration
            // sentinels and NaN (a NaN bound must never prune).
            let special = |r: &mut UnitStream| match r.next_u64() % 8 {
                0 => f64::INFINITY,
                1 => f64::NEG_INFINITY,
                2 => f64::NAN,
                _ => r.next_range(0.0, 40.0),
            };
            let k = 5usize;
            let upper: Vec<f64> = (0..n).map(|_| special(&mut rng)).collect();
            let lower: Vec<f64> = (0..n).map(|_| special(&mut rng)).collect();
            let snap_upper: Vec<f64> = (0..n).map(|_| rng.next_range(0.0, 5.0)).collect();
            let snap_lower: Vec<f64> = (0..n).map(|_| rng.next_range(0.0, 5.0)).collect();
            let labels: Vec<usize> = (0..n).map(|_| (rng.next_u64() % k as u64) as usize).collect();
            let cum_drift: Vec<f64> = (0..k).map(|_| rng.next_range(0.0, 8.0)).collect();
            let cum_excl: Vec<f64> = (0..k).map(|_| rng.next_range(0.0, 8.0)).collect();
            let s_half: Vec<f64> = (0..k).map(|_| rng.next_range(0.0, 20.0)).collect();
            let hs = HamerlySlices {
                upper: &upper,
                snap_upper: &snap_upper,
                lower: &lower,
                snap_lower: &snap_lower,
                labels: &labels,
                cum_drift: &cum_drift,
                cum_excl: &cum_excl,
                s_half: &s_half,
                cum_max: rng.next_range(0.0, 10.0),
            };
            let mut reference = Vec::new();
            prune_survivors(SimdTier::Scalar, &hs, &mut reference);
            for tier in runnable_tiers() {
                let mut got = Vec::new();
                prune_survivors(tier, &hs, &mut got);
                assert_eq!(got.len(), reference.len(), "{tier:?} n={n}");
                for (g, r) in got.iter().zip(&reference) {
                    assert_eq!(g.index, r.index, "{tier:?} n={n}");
                    assert_eq!(g.u.to_bits(), r.u.to_bits(), "{tier:?} n={n} i={}", g.index);
                    assert_eq!(g.l.to_bits(), r.l.to_bits(), "{tier:?} n={n} i={}", g.index);
                }
            }
        }
    }

    #[test]
    fn fast_math_kernels_within_documented_bound() {
        let mut rng = UnitStream::new(41);
        for d in [1usize, 2, 3, 4, 5, 8, 17, 64, 257, 1024] {
            let a: Vec<f64> = (0..d).map(|_| rng.next_range(-1e3, 1e3)).collect();
            let b: Vec<f64> = (0..d).map(|_| rng.next_range(-1e3, 1e3)).collect();
            let exact_sq = Matrix::sq_dist_hot(&a, &b);
            let exact_dot: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            let abs_dot: f64 = a.iter().zip(&b).map(|(&x, &y)| (x * y).abs()).sum();
            let bound = 2.0 * d as f64 * f64::EPSILON;
            for tier in runnable_tiers() {
                let f = sq_dist_fast(tier, &a, &b);
                assert!(
                    (f - exact_sq).abs() <= bound * exact_sq,
                    "{tier:?} d={d}: sq {f} vs {exact_sq}"
                );
                let g = dot_fast(tier, &a, &b);
                assert!(
                    (g - exact_dot).abs() <= bound * abs_dot,
                    "{tier:?} d={d}: dot {g} vs {exact_dot}"
                );
            }
        }
    }

    #[test]
    fn empty_inputs_are_identities() {
        for tier in runnable_tiers() {
            assert_eq!(sq_dist_fast(tier, &[], &[]), 0.0);
            assert_eq!(dot_fast(tier, &[], &[]), 0.0);
            let xt = TransposedPoints::build(tier, &[], 0, 3);
            assert!(xt.is_empty());
            let mut out: Vec<f64> = Vec::new();
            sq_dist_to_point(&xt, &[0.0, 0.0, 0.0], &mut out);
            min_d2_update(&xt, &[0.0, 0.0, 0.0], 0.0, &[], &mut []);
        }
    }
}
