use crate::{Matrix, MlError};

/// Per-feature standardisation: `(x - mean) / std_dev`.
///
/// Features with zero variance are left centred but unscaled (divide by 1),
/// matching scikit-learn's behaviour. The PKA pipeline fits the scaler on the
/// detailed-profiling features before PCA so that count-like metrics
/// (billions of instructions) do not drown ratio-like metrics (divergence
/// efficiency).
///
/// # Examples
///
/// ```
/// use pka_ml::{Matrix, StandardScaler};
///
/// let data = Matrix::from_rows(&[vec![1.0, 100.0], vec![3.0, 300.0]])?;
/// let scaler = StandardScaler::fit(&data)?;
/// let scaled = scaler.transform(&data)?;
/// // Both columns become zero-mean, unit-ish variance.
/// assert!((scaled.get(0, 0) + 1.0).abs() < 1e-12);
/// assert!((scaled.get(1, 0) - 1.0).abs() < 1e-12);
/// # Ok::<(), pka_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    std_devs: Vec<f64>,
}

impl StandardScaler {
    /// Learns per-column mean and standard deviation from `data`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyInput`] if `data` has no rows or columns.
    pub fn fit(data: &Matrix) -> Result<Self, MlError> {
        if data.rows() == 0 || data.cols() == 0 {
            return Err(MlError::EmptyInput);
        }
        let means = data.column_means();
        let mut vars = vec![0.0; data.cols()];
        for row in data.iter_rows() {
            for (v, (&x, &m)) in vars.iter_mut().zip(row.iter().zip(&means)) {
                let d = x - m;
                *v += d * d;
            }
        }
        let n = data.rows() as f64;
        let std_devs = vars
            .into_iter()
            .map(|v| {
                let sd = (v / n).sqrt();
                if sd > 0.0 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Self { means, std_devs })
    }

    /// Applies the learned standardisation to `data`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `data` has a different
    /// number of columns than the fitting data.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix, MlError> {
        if data.cols() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.means.len(),
                actual: data.cols(),
            });
        }
        let mut out = Matrix::zeros(data.rows(), data.cols());
        for i in 0..data.rows() {
            for j in 0..data.cols() {
                out.set(i, j, (data.get(i, j) - self.means[j]) / self.std_devs[j]);
            }
        }
        Ok(out)
    }

    /// Applies the learned standardisation to a single sample.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on column-count mismatch.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        if row.len() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.means.len(),
                actual: row.len(),
            });
        }
        Ok(row
            .iter()
            .zip(self.means.iter().zip(&self.std_devs))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect())
    }

    /// Applies the learned standardisation to a single sample, writing into
    /// a caller-provided buffer (the allocation-free twin of
    /// [`transform_row`](Self::transform_row), bit-identical to it).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `row` and `out` do not both
    /// match the fitted column count.
    pub fn transform_row_into(&self, row: &[f64], out: &mut [f64]) -> Result<(), MlError> {
        if row.len() != self.means.len() || out.len() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.means.len(),
                actual: row.len(),
            });
        }
        for (o, (&x, (&m, &s))) in out
            .iter_mut()
            .zip(row.iter().zip(self.means.iter().zip(&self.std_devs)))
        {
            *o = (x - m) / s;
        }
        Ok(())
    }

    /// Convenience: fit on `data`, then transform it.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`StandardScaler::fit`].
    pub fn fit_transform(data: &Matrix) -> Result<(Self, Matrix), MlError> {
        let scaler = Self::fit(data)?;
        let scaled = scaler.transform(data)?;
        Ok((scaler, scaled))
    }

    /// The learned per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The learned per-column standard deviations (1.0 for constant columns).
    pub fn std_devs(&self) -> &[f64] {
        &self.std_devs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rejected() {
        assert_eq!(
            StandardScaler::fit(&Matrix::zeros(0, 0)),
            Err(MlError::EmptyInput)
        );
    }

    #[test]
    fn transformed_data_is_standardised() {
        let data = Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ])
        .unwrap();
        let (_, scaled) = StandardScaler::fit_transform(&data).unwrap();
        for j in 0..2 {
            let mean: f64 = (0..4).map(|i| scaled.get(i, j)).sum::<f64>() / 4.0;
            let var: f64 = (0..4).map(|i| scaled.get(i, j).powi(2)).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_survives() {
        let data = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        let (_, scaled) = StandardScaler::fit_transform(&data).unwrap();
        assert_eq!(scaled.get(0, 0), 0.0);
        assert_eq!(scaled.get(1, 0), 0.0);
        assert!(scaled.get(0, 1).is_finite());
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let data = Matrix::from_rows(&[vec![1.0, -4.0], vec![9.0, 2.0], vec![5.0, 0.0]]).unwrap();
        let scaler = StandardScaler::fit(&data).unwrap();
        let m = scaler.transform(&data).unwrap();
        for i in 0..3 {
            let r = scaler.transform_row(data.row(i)).unwrap();
            assert_eq!(r, m.row(i));
        }
    }

    #[test]
    fn mismatched_columns_rejected() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let scaler = StandardScaler::fit(&data).unwrap();
        assert!(matches!(
            scaler.transform_row(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
        let wrong = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(matches!(
            scaler.transform(&wrong),
            Err(MlError::DimensionMismatch { .. })
        ));
    }
}
