use crate::eigen::jacobi_eigen;
use crate::simd::{self, SimdTier};
use crate::{Matrix, MlError};

/// Principal component analysis.
///
/// Fits on a (typically pre-standardised) sample matrix, producing an
/// orthogonal projection onto the directions of greatest variance.
/// *Principal Kernel Selection* projects the 12 architecture-agnostic kernel
/// metrics (Table 2 of the paper) down to a handful of components before
/// clustering, explicitly to dodge the curse of dimensionality (Section 3.1).
///
/// # Examples
///
/// ```
/// use pka_ml::{Matrix, Pca};
///
/// // Points along the line y = 2x: one dominant direction.
/// let data = Matrix::from_rows(&[
///     vec![1.0, 2.0],
///     vec![2.0, 4.0],
///     vec![3.0, 6.0],
///     vec![4.0, 8.0],
/// ])?;
/// let fit = Pca::new(2).fit(&data)?;
/// assert!(fit.explained_variance_ratio()[0] > 0.999);
/// # Ok::<(), pka_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pca {
    n_components: usize,
}

impl Pca {
    /// Configures a PCA keeping `n_components` components.
    pub fn new(n_components: usize) -> Self {
        Self { n_components }
    }

    /// Configures a PCA that keeps as many leading components as needed to
    /// explain at least `fraction` of the total variance. Applied at
    /// [`fit`](Pca::fit) time via [`PcaFit::truncated_to_variance`].
    ///
    /// This is the policy the PKA tooling uses: keep the explainable core,
    /// drop the noise floor.
    pub fn full() -> Self {
        Self {
            n_components: usize::MAX,
        }
    }

    /// Fits the projection on `data` (rows are samples).
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyInput`] if `data` is empty.
    /// * [`MlError::InvalidParameter`] if zero components were requested.
    /// * Propagates eigensolver errors.
    pub fn fit(&self, data: &Matrix) -> Result<PcaFit, MlError> {
        let _span = pka_obs::span("pca.fit");
        if self.n_components == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_components",
                message: "must be at least 1".into(),
            });
        }
        if data.rows() == 0 || data.cols() == 0 {
            return Err(MlError::EmptyInput);
        }
        let cov = data.covariance()?;
        let eig = jacobi_eigen(&cov)?;
        let keep = self.n_components.min(data.cols());
        let total_variance: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        Ok(PcaFit {
            means: data.column_means(),
            components: eig.vectors.into_iter().take(keep).collect(),
            eigenvalues: eig.values.into_iter().take(keep).collect(),
            total_variance,
        })
    }
}

/// A fitted PCA projection.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaFit {
    means: Vec<f64>,
    components: Vec<Vec<f64>>,
    eigenvalues: Vec<f64>,
    total_variance: f64,
}

impl PcaFit {
    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Eigenvalues (variance along each retained component), descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// The retained principal directions (unit vectors in feature space).
    pub fn components(&self) -> &[Vec<f64>] {
        &self.components
    }

    /// Fraction of the total variance captured by each retained component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance <= 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues
            .iter()
            .map(|v| v.max(0.0) / self.total_variance)
            .collect()
    }

    /// Returns a copy truncated to the smallest number of leading components
    /// whose cumulative explained-variance ratio reaches `fraction`
    /// (clamped to `[0, 1]`). At least one component is always kept.
    pub fn truncated_to_variance(&self, fraction: f64) -> PcaFit {
        let fraction = fraction.clamp(0.0, 1.0);
        let ratios = self.explained_variance_ratio();
        let mut cum = 0.0;
        let mut keep = 1;
        for (i, r) in ratios.iter().enumerate() {
            cum += r;
            keep = i + 1;
            if cum >= fraction {
                break;
            }
        }
        PcaFit {
            means: self.means.clone(),
            components: self.components[..keep].to_vec(),
            eigenvalues: self.eigenvalues[..keep].to_vec(),
            total_variance: self.total_variance,
        }
    }

    /// Projects a sample matrix into component space.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on column-count mismatch.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix, MlError> {
        if data.cols() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.means.len(),
                actual: data.cols(),
            });
        }
        let mut out = Matrix::zeros(data.rows(), self.components.len());
        let tier = simd::active_tier();
        if tier != SimdTier::Scalar && !self.components.is_empty() {
            // Centring is hoisted out of the per-component loop: `x − m`
            // is recomputed to the same bits either way. The default tier
            // then projects with lane = component (bitwise equal to the
            // scalar fold below); `--fast-math` uses the reassociated
            // lane = dimension dot instead.
            let d = self.means.len();
            let mut centred = vec![0.0; d];
            if simd::fast_math() {
                for (i, row) in data.iter_rows().enumerate() {
                    centre(row, &self.means, &mut centred);
                    for (j, comp) in self.components.iter().enumerate() {
                        out.set(i, j, simd::dot_fast(tier, &centred, comp));
                    }
                }
            } else {
                let flat: Vec<f64> =
                    self.components.iter().flat_map(|c| c.iter().copied()).collect();
                let inter = simd::InterleavedRows::build(tier, &flat, d);
                let mut proj = vec![0.0; self.components.len()];
                for (i, row) in data.iter_rows().enumerate() {
                    centre(row, &self.means, &mut centred);
                    simd::dot_batch(&centred, &inter, &mut proj);
                    for (j, &v) in proj.iter().enumerate() {
                        out.set(i, j, v);
                    }
                }
            }
            return Ok(out);
        }
        for (i, row) in data.iter_rows().enumerate() {
            for (j, comp) in self.components.iter().enumerate() {
                let v: f64 = row
                    .iter()
                    .zip(self.means.iter().zip(comp))
                    .map(|(&x, (&m, &c))| (x - m) * c)
                    .sum();
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Projects a single sample into component space.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on column-count mismatch.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        if row.len() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.means.len(),
                actual: row.len(),
            });
        }
        let tier = simd::active_tier();
        if simd::fast_math() && tier != SimdTier::Scalar {
            let mut centred = vec![0.0; self.means.len()];
            centre(row, &self.means, &mut centred);
            return Ok(self
                .components
                .iter()
                .map(|comp| simd::dot_fast(tier, &centred, comp))
                .collect());
        }
        // Default tier: the per-record path stays on the exact scalar fold —
        // one row against a handful of components is too small to amortise
        // packing an interleaved block per call, and the streaming
        // pipeline's checkpoints pin these bits.
        Ok(self
            .components
            .iter()
            .map(|comp| {
                row.iter()
                    .zip(self.means.iter().zip(comp))
                    .map(|(&x, (&m, &c))| (x - m) * c)
                    .sum()
            })
            .collect())
    }
}

/// `out[m] = row[m] − means[m]` — the shared centring step of both
/// projection paths.
fn centre(row: &[f64], means: &[f64], out: &mut [f64]) {
    for ((&x, &m), o) in row.iter().zip(means).zip(out.iter_mut()) {
        *o = x - m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_components_rejected() {
        let data = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            Pca::new(0).fit(&data),
            Err(MlError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn dominant_direction_recovered() {
        // Strong variance along (1, 1), tiny along (1, -1).
        let data = Matrix::from_rows(&[
            vec![0.0, 0.1],
            vec![1.0, 0.9],
            vec![2.0, 2.1],
            vec![3.0, 2.9],
            vec![4.0, 4.1],
        ])
        .unwrap();
        let fit = Pca::new(2).fit(&data).unwrap();
        let c0 = &fit.components()[0];
        // First component aligned (up to sign) with (1,1)/sqrt(2).
        assert!((c0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
        assert!((c0[0] - c0[1]).abs() < 0.1 || (c0[0] + c0[1]).abs() < 0.1);
        let evr = fit.explained_variance_ratio();
        assert!(evr[0] > 0.99);
    }

    #[test]
    fn transform_preserves_pairwise_distances_for_full_rank() {
        // Orthogonal projection with all components kept is an isometry on
        // centred data.
        let data = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![-1.0, 0.0, 1.5],
            vec![2.0, -1.0, 0.0],
            vec![0.0, 1.0, -2.0],
        ])
        .unwrap();
        let fit = Pca::full().fit(&data).unwrap();
        let t = fit.transform(&data).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let d_orig = Matrix::sq_dist(data.row(i), data.row(j));
                let d_proj = Matrix::sq_dist(t.row(i), t.row(j));
                assert!((d_orig - d_proj).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn truncation_keeps_at_least_one() {
        let data = Matrix::from_rows(&[vec![1.0, 0.0], vec![2.0, 0.0], vec![3.0, 0.0]]).unwrap();
        let fit = Pca::full().fit(&data).unwrap();
        let t = fit.truncated_to_variance(0.0);
        assert_eq!(t.n_components(), 1);
        let t = fit.truncated_to_variance(1.0);
        assert!(t.n_components() >= 1);
    }

    #[test]
    fn truncation_reaches_requested_variance() {
        let data = Matrix::from_rows(&[
            vec![10.0, 1.0, 0.1],
            vec![-10.0, -1.0, -0.1],
            vec![20.0, 2.0, 0.0],
            vec![-20.0, -2.0, 0.0],
        ])
        .unwrap();
        let fit = Pca::full().fit(&data).unwrap();
        let t = fit.truncated_to_variance(0.9);
        let captured: f64 = t.explained_variance_ratio().iter().sum();
        assert!(captured >= 0.9);
    }

    #[test]
    fn transform_row_matches_matrix_path() {
        let data = Matrix::from_rows(&[vec![1.0, 4.0], vec![2.0, 3.0], vec![5.0, 1.0]]).unwrap();
        let fit = Pca::new(2).fit(&data).unwrap();
        let m = fit.transform(&data).unwrap();
        for i in 0..3 {
            let r = fit.transform_row(data.row(i)).unwrap();
            for j in 0..2 {
                assert!((r[j] - m.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn constant_data_yields_zero_ratios() {
        let data = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let fit = Pca::full().fit(&data).unwrap();
        assert!(fit.explained_variance_ratio().iter().all(|&r| r == 0.0));
    }
}
