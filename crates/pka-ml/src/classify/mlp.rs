use pka_stats::hash::UnitStream;

use super::Classifier;
use crate::{Matrix, MlError, StandardScaler};

/// A single-hidden-layer multilayer perceptron classifier.
///
/// The third of PKA's two-level-profiling classifiers. Architecture:
/// `features → hidden (ReLU) → classes (softmax)`, trained with plain
/// mini-batch SGD and cross-entropy loss. Inputs are standardised
/// internally; weight initialisation and shuffling are deterministic given
/// the seed.
///
/// # Examples
///
/// ```
/// use pka_ml::classify::{Classifier, MlpClassifier};
/// use pka_ml::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![0.5], vec![10.0], vec![10.5]])?;
/// let model = MlpClassifier::fit(&x, &[0, 0, 1, 1], 42)?;
/// assert_eq!(model.predict(&[10.1])?, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    scaler: StandardScaler,
    classes: Vec<usize>,
    /// `w1[h]` is the input→hidden weight row for hidden unit `h` (bias last).
    w1: Vec<Vec<f64>>,
    /// `w2[c]` is the hidden→output weight row for class `c` (bias last).
    w2: Vec<Vec<f64>>,
}

const HIDDEN: usize = 16;
const EPOCHS: usize = 120;
const LEARNING_RATE: f64 = 0.02;

impl MlpClassifier {
    /// Trains on rows of `x` with class labels `y`.
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyInput`] if `x` has no rows.
    /// * [`MlError::DimensionMismatch`] if `y.len() != x.rows()`.
    pub fn fit(x: &Matrix, y: &[usize], seed: u64) -> Result<Self, MlError> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::EmptyInput);
        }
        if y.len() != x.rows() {
            return Err(MlError::DimensionMismatch {
                expected: x.rows(),
                actual: y.len(),
            });
        }
        let (scaler, xs) = StandardScaler::fit_transform(x)?;

        let mut classes: Vec<usize> = y.to_vec();
        classes.sort_unstable();
        classes.dedup();
        let k = classes.len();
        let d = x.cols();

        let mut rng = UnitStream::new(seed ^ 0xa076_1d64_78bd_642f);
        // He-style initialisation scaled for ReLU.
        let scale1 = (2.0 / d as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..HIDDEN)
            .map(|_| {
                (0..=d)
                    .map(|j| {
                        if j == d {
                            0.0
                        } else {
                            (rng.next_f64() - 0.5) * 2.0 * scale1
                        }
                    })
                    .collect()
            })
            .collect();
        let scale2 = (2.0 / HIDDEN as f64).sqrt();
        let mut w2: Vec<Vec<f64>> = (0..k)
            .map(|_| {
                (0..=HIDDEN)
                    .map(|j| {
                        if j == HIDDEN {
                            0.0
                        } else {
                            (rng.next_f64() - 0.5) * 2.0 * scale2
                        }
                    })
                    .collect()
            })
            .collect();

        let class_index = |label: usize| classes.binary_search(&label).expect("label seen");
        let mut order: Vec<usize> = (0..xs.rows()).collect();
        // Per-sample forward/backward scratch, hoisted out of the training
        // loop. Each buffer is filled with the same expressions, in the same
        // order, as the allocating formulation it replaces, so the fitted
        // weights are bit-identical.
        let mut hidden = vec![0.0; HIDDEN];
        let mut probs = vec![0.0; k];
        let mut dlogits = vec![0.0; k];

        for epoch in 0..EPOCHS {
            for i in (1..order.len()).rev() {
                let j = (rng.next_f64() * (i + 1) as f64) as usize;
                order.swap(i, j);
            }
            let lr = LEARNING_RATE / (1.0 + epoch as f64 * 0.01);
            for &i in &order {
                let row = xs.row(i);
                // Forward.
                for (hz, w) in hidden.iter_mut().zip(&w1) {
                    let z: f64 = w[..d].iter().zip(row).map(|(a, b)| a * b).sum::<f64>() + w[d];
                    *hz = z.max(0.0);
                }
                for (p, w) in probs.iter_mut().zip(&w2) {
                    *p = w[..HIDDEN]
                        .iter()
                        .zip(&hidden)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
                        + w[HIDDEN];
                }
                let max = probs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                for p in probs.iter_mut() {
                    *p = (*p - max).exp();
                }
                let sum: f64 = probs.iter().sum();
                for p in probs.iter_mut() {
                    *p /= sum;
                }

                // Backward.
                let target = class_index(y[i]);
                for (c, (dl, &p)) in dlogits.iter_mut().zip(&probs).enumerate() {
                    *dl = p - if c == target { 1.0 } else { 0.0 };
                }
                let mut dhidden = [0.0; HIDDEN];
                for (c, dl) in dlogits.iter().enumerate() {
                    for (h, dh) in dhidden.iter_mut().enumerate() {
                        *dh += dl * w2[c][h];
                    }
                }
                for (c, dl) in dlogits.iter().enumerate() {
                    for h in 0..HIDDEN {
                        w2[c][h] -= lr * dl * hidden[h];
                    }
                    w2[c][HIDDEN] -= lr * dl;
                }
                for (h, dh) in dhidden.iter().enumerate() {
                    if hidden[h] > 0.0 {
                        for (j, &xj) in row.iter().enumerate() {
                            w1[h][j] -= lr * dh * xj;
                        }
                        w1[h][d] -= lr * dh;
                    }
                }
            }
        }

        Ok(Self {
            scaler,
            classes,
            w1,
            w2,
        })
    }

    /// The distinct class labels seen at fit time, ascending.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }
}

impl Classifier for MlpClassifier {
    fn predict(&self, sample: &[f64]) -> Result<usize, MlError> {
        let row = self.scaler.transform_row(sample)?;
        let d = row.len();
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .map(|w| {
                let z: f64 = w[..d].iter().zip(&row).map(|(a, b)| a * b).sum::<f64>() + w[d];
                z.max(0.0)
            })
            .collect();
        let best = self
            .w2
            .iter()
            .map(|w| {
                w[..HIDDEN]
                    .iter()
                    .zip(&hidden)
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
                    + w[HIDDEN]
            })
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("logits are finite"))
            .map(|(i, _)| i)
            .expect("at least one class");
        Ok(self.classes[best])
    }

    fn predict_into(
        &self,
        samples: &[f64],
        d: usize,
        out: &mut Vec<usize>,
    ) -> Result<(), MlError> {
        crate::classify::check_batch(samples, d)?;
        let mut scaled = vec![0.0; self.w1.first().map_or(0, |w| w.len() - 1)];
        let mut hidden = vec![0.0; self.w1.len()];
        out.clear();
        out.reserve(samples.len() / d);
        for row in samples.chunks_exact(d) {
            self.scaler.transform_row_into(row, &mut scaled)?;
            let dd = scaled.len();
            for (hz, w) in hidden.iter_mut().zip(&self.w1) {
                let z: f64 =
                    w[..dd].iter().zip(&scaled).map(|(a, b)| a * b).sum::<f64>() + w[dd];
                *hz = z.max(0.0);
            }
            let best = self
                .w2
                .iter()
                .map(|w| {
                    w[..HIDDEN]
                        .iter()
                        .zip(&hidden)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
                        + w[HIDDEN]
                })
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("logits are finite"))
                .map(|(i, _)| i)
                .expect("at least one class");
            out.push(self.classes[best]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::accuracy;

    #[test]
    fn separable_three_class() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.1;
            rows.push(vec![0.0 + j, 0.0]);
            y.push(0);
            rows.push(vec![10.0, 10.0 + j]);
            y.push(1);
            rows.push(vec![-10.0, 10.0 - j]);
            y.push(2);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let model = MlpClassifier::fit(&x, &y, 3).unwrap();
        let pred = model.predict_all(&x).unwrap();
        assert!(accuracy(&pred, &y) > 0.95);
    }

    #[test]
    fn learns_xor_unlike_a_linear_model() {
        // XOR needs the hidden layer; replicate points so SGD has data.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            let eps = i as f64 * 0.01;
            rows.push(vec![0.0 + eps, 0.0]);
            y.push(0);
            rows.push(vec![1.0, 1.0 - eps]);
            y.push(0);
            rows.push(vec![0.0 + eps, 1.0]);
            y.push(1);
            rows.push(vec![1.0, 0.0 + eps]);
            y.push(1);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let model = MlpClassifier::fit(&x, &y, 11).unwrap();
        let pred = model.predict_all(&x).unwrap();
        assert!(accuracy(&pred, &y) > 0.9, "acc = {}", accuracy(&pred, &y));
    }

    #[test]
    fn deterministic_given_seed() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![5.0], vec![6.0]]).unwrap();
        let y = [0, 0, 1, 1];
        let a = MlpClassifier::fit(&x, &y, 9).unwrap();
        let b = MlpClassifier::fit(&x, &y, 9).unwrap();
        for probe in [[0.5], [3.0], [5.5]] {
            assert_eq!(a.predict(&probe).unwrap(), b.predict(&probe).unwrap());
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let x = Matrix::from_rows(&[vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            MlpClassifier::fit(&x, &[0, 1], 0),
            Err(MlError::DimensionMismatch { .. })
        ));
        let model = MlpClassifier::fit(&x, &[0], 0).unwrap();
        assert!(matches!(
            model.predict(&[1.0, 2.0, 3.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }
}
