use super::Classifier;
use crate::{Matrix, MlError};

/// Gaussian naive Bayes classifier.
///
/// The second of PKA's two-level-profiling classifiers. Each class is
/// modelled as an axis-aligned Gaussian with per-feature mean and variance;
/// prediction maximises the log-posterior with class priors estimated from
/// label frequencies. Variances are floored at a small epsilon scaled by the
/// overall feature variance (scikit-learn's `var_smoothing` trick) so
/// constant features do not produce infinities.
///
/// # Examples
///
/// ```
/// use pka_ml::classify::{Classifier, GaussianNb};
/// use pka_ml::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![0.4], vec![8.0], vec![8.4]])?;
/// let model = GaussianNb::fit(&x, &[0, 0, 1, 1])?;
/// assert_eq!(model.predict(&[0.1])?, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct GaussianNb {
    classes: Vec<usize>,
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    variances: Vec<Vec<f64>>,
    n_features: usize,
    /// `priors[c].ln()`, precomputed at fit time for the batch path.
    log_priors: Vec<f64>,
    /// `(2π · variances[c][j]).ln()`, precomputed at fit time. Logarithms
    /// are pure functions, so these bits equal the values `predict`
    /// computes inline and the batch path stays bit-identical to it.
    log_norms: Vec<Vec<f64>>,
}

const VAR_SMOOTHING: f64 = 1e-9;

impl GaussianNb {
    /// Trains on rows of `x` with class labels `y`.
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyInput`] if `x` has no rows.
    /// * [`MlError::DimensionMismatch`] if `y.len() != x.rows()`.
    pub fn fit(x: &Matrix, y: &[usize]) -> Result<Self, MlError> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::EmptyInput);
        }
        if y.len() != x.rows() {
            return Err(MlError::DimensionMismatch {
                expected: x.rows(),
                actual: y.len(),
            });
        }
        let mut classes: Vec<usize> = y.to_vec();
        classes.sort_unstable();
        classes.dedup();

        let d = x.cols();
        let k = classes.len();
        let mut counts = vec![0usize; k];
        let mut means = vec![vec![0.0; d]; k];
        for (row, &label) in x.iter_rows().zip(y) {
            let c = classes.binary_search(&label).expect("label seen");
            counts[c] += 1;
            for (m, &v) in means[c].iter_mut().zip(row) {
                *m += v;
            }
        }
        for (c, count) in counts.iter().enumerate() {
            for m in &mut means[c] {
                *m /= *count as f64;
            }
        }
        let mut variances = vec![vec![0.0; d]; k];
        for (row, &label) in x.iter_rows().zip(y) {
            let c = classes.binary_search(&label).expect("label seen");
            for ((v, &m), &xv) in variances[c].iter_mut().zip(&means[c]).zip(row) {
                let dlt = xv - m;
                *v += dlt * dlt;
            }
        }
        // Smoothing floor proportional to the largest overall feature
        // variance, as in scikit-learn.
        let overall_means = x.column_means();
        let mut max_var = 0.0f64;
        for j in 0..d {
            let var: f64 = x
                .iter_rows()
                .map(|r| (r[j] - overall_means[j]).powi(2))
                .sum::<f64>()
                / x.rows() as f64;
            max_var = max_var.max(var);
        }
        let floor = VAR_SMOOTHING * max_var.max(1.0);
        for (c, count) in counts.iter().enumerate() {
            for v in &mut variances[c] {
                *v = (*v / *count as f64).max(floor);
            }
        }

        let n = x.rows() as f64;
        let priors: Vec<f64> = counts.iter().map(|&c| c as f64 / n).collect();
        let log_priors = priors.iter().map(|p| p.ln()).collect();
        let log_norms = variances
            .iter()
            .map(|vs| {
                vs.iter()
                    .map(|&v| (2.0 * std::f64::consts::PI * v).ln())
                    .collect()
            })
            .collect();
        Ok(Self {
            classes,
            priors,
            means,
            variances,
            n_features: d,
            log_priors,
            log_norms,
        })
    }

    /// The distinct class labels seen at fit time, ascending.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Log-posterior (up to a constant) of each class for `sample`.
    fn log_posteriors(&self, sample: &[f64]) -> Vec<f64> {
        self.classes
            .iter()
            .enumerate()
            .map(|(c, _)| {
                let mut lp = self.priors[c].ln();
                for ((&x, &m), &v) in sample.iter().zip(&self.means[c]).zip(&self.variances[c]) {
                    lp += -0.5 * ((2.0 * std::f64::consts::PI * v).ln() + (x - m) * (x - m) / v);
                }
                lp
            })
            .collect()
    }
}

impl Classifier for GaussianNb {
    fn predict(&self, sample: &[f64]) -> Result<usize, MlError> {
        if sample.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: sample.len(),
            });
        }
        let lp = self.log_posteriors(sample);
        let best = lp
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("log-posteriors are finite"))
            .map(|(i, _)| i)
            .expect("at least one class");
        Ok(self.classes[best])
    }

    fn predict_into(
        &self,
        samples: &[f64],
        d: usize,
        out: &mut Vec<usize>,
    ) -> Result<(), MlError> {
        crate::classify::check_batch(samples, d)?;
        if d != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: d,
            });
        }
        let mut lp = vec![0.0; self.classes.len()];
        out.clear();
        out.reserve(samples.len() / d);
        for row in samples.chunks_exact(d) {
            // Same accumulation as `log_posteriors`, with the fit-time log
            // constants substituted for the inline `ln` calls (identical
            // bits, see the field docs) and the per-row allocation removed.
            for (c, p) in lp.iter_mut().enumerate() {
                let mut acc = self.log_priors[c];
                for (((&x, &m), &v), &lnv) in row
                    .iter()
                    .zip(&self.means[c])
                    .zip(&self.variances[c])
                    .zip(&self.log_norms[c])
                {
                    acc += -0.5 * (lnv + (x - m) * (x - m) / v);
                }
                *p = acc;
            }
            let best = lp
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("log-posteriors are finite"))
                .map(|(i, _)| i)
                .expect("at least one class");
            out.push(self.classes[best]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::accuracy;

    #[test]
    fn separable_two_class() {
        let x = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![0.5, 1.2],
            vec![0.2, 0.8],
            vec![9.0, -1.0],
            vec![9.5, -1.2],
            vec![9.2, -0.8],
        ])
        .unwrap();
        let y = [0, 0, 0, 1, 1, 1];
        let model = GaussianNb::fit(&x, &y).unwrap();
        let pred = model.predict_all(&x).unwrap();
        assert_eq!(accuracy(&pred, &y), 1.0);
    }

    #[test]
    fn priors_affect_prediction() {
        // Class 1 is 5x more common; an ambiguous midpoint should go to it.
        let mut rows = vec![vec![0.0]];
        let mut y = vec![0];
        for _ in 0..5 {
            rows.push(vec![2.0]);
            y.push(1);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let model = GaussianNb::fit(&x, &y).unwrap();
        // Both classes have (floored) equal variance; midpoint is 1.0.
        assert_eq!(model.predict(&[1.0]).unwrap(), 1);
    }

    #[test]
    fn constant_features_do_not_explode() {
        let x = Matrix::from_rows(&[vec![1.0, 5.0], vec![1.0, 5.0], vec![2.0, 5.0]]).unwrap();
        let model = GaussianNb::fit(&x, &[0, 0, 1]).unwrap();
        let p = model.predict(&[1.0, 5.0]).unwrap();
        assert_eq!(p, 0);
    }

    #[test]
    fn label_mismatch_rejected() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(matches!(
            GaussianNb::fit(&x, &[0, 1]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn wrong_feature_count_rejected() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let model = GaussianNb::fit(&x, &[0, 1]).unwrap();
        assert!(matches!(
            model.predict(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn classes_sorted_and_deduped() {
        let x = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![0.1], vec![5.1]]).unwrap();
        let model = GaussianNb::fit(&x, &[9, 2, 9, 2]).unwrap();
        assert_eq!(model.classes(), &[2, 9]);
    }
}
