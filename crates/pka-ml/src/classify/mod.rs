//! Classifiers for PKA's two-level profiling mapping.
//!
//! When detailed profiling is intractable, PKA profiles the first *j* kernels
//! in detail, clusters them, and then labels the remaining lightly-profiled
//! kernels with one of three classifiers — stochastic gradient descent,
//! Gaussian naive Bayes, or a multilayer perceptron (Section 3.1 of the
//! paper). The [`Ensemble`] combines them by majority vote, which is how the
//! reference tooling resolves disagreements.

mod gnb;
mod mlp;
mod sgd;

pub use gnb::GaussianNb;
pub use mlp::MlpClassifier;
pub use sgd::SgdClassifier;

use crate::{Matrix, MlError};

/// A fitted multi-class classifier over dense feature vectors.
///
/// Implementations are produced by each model's `fit` constructor; labels are
/// arbitrary `usize` class ids (PKA uses the PKS group index).
pub trait Classifier {
    /// Predicts the class of one sample.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if the sample has the wrong
    /// number of features.
    fn predict(&self, sample: &[f64]) -> Result<usize, MlError>;

    /// Predicts a class per row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if the matrix has the wrong
    /// number of columns.
    fn predict_all(&self, samples: &Matrix) -> Result<Vec<usize>, MlError> {
        samples.iter_rows().map(|r| self.predict(r)).collect()
    }

    /// Predicts a class per row of a flat row-major batch, appending to
    /// `out` — the high-throughput twin of [`predict`](Self::predict).
    ///
    /// `samples` holds `samples.len() / d` rows of `d` features each.
    /// Implementations must label each row exactly as `predict` would
    /// (bit-identical score arithmetic); the default implementation simply
    /// delegates row by row. Optimised overrides reuse scratch buffers so
    /// the per-row cost is allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `d` is zero, if
    /// `samples.len()` is not a multiple of `d`, or if `d` does not match
    /// the fitted feature count.
    fn predict_into(
        &self,
        samples: &[f64],
        d: usize,
        out: &mut Vec<usize>,
    ) -> Result<(), MlError> {
        check_batch(samples, d)?;
        out.clear();
        out.reserve(samples.len() / d);
        for row in samples.chunks_exact(d) {
            out.push(self.predict(row)?);
        }
        Ok(())
    }
}

/// Validates the shape of a flat row-major batch.
pub(crate) fn check_batch(samples: &[f64], d: usize) -> Result<(), MlError> {
    if d == 0 || samples.len() % d != 0 {
        return Err(MlError::DimensionMismatch {
            expected: d.max(1),
            actual: samples.len(),
        });
    }
    Ok(())
}

/// Fraction of samples whose prediction matches the reference label.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use pka_ml::classify::accuracy;
///
/// assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
/// ```
pub fn accuracy(predicted: &[usize], reference: &[usize]) -> f64 {
    assert_eq!(
        predicted.len(),
        reference.len(),
        "accuracy requires equal-length slices"
    );
    if predicted.is_empty() {
        return 0.0;
    }
    let hits = predicted
        .iter()
        .zip(reference)
        .filter(|(p, r)| p == r)
        .count();
    hits as f64 / predicted.len() as f64
}

/// Majority-vote ensemble over boxed classifiers.
///
/// Ties are broken toward the first classifier's vote, which makes the
/// ensemble deterministic and gives the (cheap, robust) SGD model priority in
/// the default PKA configuration.
///
/// # Examples
///
/// ```
/// use pka_ml::classify::{Classifier, Ensemble, GaussianNb, SgdClassifier};
/// use pka_ml::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![5.0], vec![5.1]])?;
/// let y = [0, 0, 1, 1];
/// let ensemble = Ensemble::new(vec![
///     Box::new(SgdClassifier::fit(&x, &y, 0)?),
///     Box::new(GaussianNb::fit(&x, &y)?),
/// ]);
/// assert_eq!(ensemble.predict(&[4.9])?, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Ensemble {
    members: Vec<Box<dyn Classifier + Send + Sync>>,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field("members", &self.members.len())
            .finish()
    }
}

impl Ensemble {
    /// Builds an ensemble from fitted classifiers.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn Classifier + Send + Sync>>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Self { members }
    }

    /// Number of member classifiers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the ensemble has no members (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member classifiers, in vote order.
    pub fn members(&self) -> &[Box<dyn Classifier + Send + Sync>] {
        &self.members
    }
}

impl Classifier for Ensemble {
    fn predict(&self, sample: &[f64]) -> Result<usize, MlError> {
        let votes: Vec<usize> = self
            .members
            .iter()
            .map(|m| m.predict(sample))
            .collect::<Result<_, _>>()?;
        let mut counts: Vec<(usize, usize)> = Vec::new();
        for &v in &votes {
            match counts.iter_mut().find(|(label, _)| *label == v) {
                Some((_, c)) => *c += 1,
                None => counts.push((v, 1)),
            }
        }
        let max = counts.iter().map(|&(_, c)| c).max().expect("non-empty");
        // Tie-break toward the earliest vote that achieved the max count.
        Ok(votes
            .iter()
            .copied()
            .find(|v| counts.iter().any(|&(l, c)| l == *v && c == max))
            .expect("non-empty"))
    }

    /// Batched majority vote with a lazy middle member.
    ///
    /// For the canonical three-member ensemble the majority is decided by
    /// the first and third members whenever they agree: the middle vote can
    /// neither overturn a 2-of-3 majority nor win the all-distinct
    /// tie-break (which goes to the first member). The middle member is
    /// therefore only consulted on rows where the outer two disagree, where
    /// the vote algebra reduces to: side with the middle member iff it
    /// matches the third. Labels are identical to [`predict`](Self::predict)
    /// on every row; members skipped by the short-circuit are not asked to
    /// validate the row (all members share the fitted dimensionality, so
    /// shape errors are still caught by the members that do run).
    fn predict_into(
        &self,
        samples: &[f64],
        d: usize,
        out: &mut Vec<usize>,
    ) -> Result<(), MlError> {
        check_batch(samples, d)?;
        if self.members.len() != 3 {
            out.clear();
            out.reserve(samples.len() / d);
            for row in samples.chunks_exact(d) {
                out.push(self.predict(row)?);
            }
            return Ok(());
        }
        let mut first = Vec::new();
        let mut third = Vec::new();
        self.members[0].predict_into(samples, d, &mut first)?;
        self.members[2].predict_into(samples, d, &mut third)?;
        out.clear();
        out.reserve(first.len());
        for (i, (&a, &c)) in first.iter().zip(&third).enumerate() {
            if a == c {
                out.push(a);
            } else {
                let b = self.members[1].predict(&samples[i * d..(i + 1) * d])?;
                out.push(if b == c { b } else { a });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A classifier that always answers the same class.
    #[derive(Debug)]
    struct Constant(usize);

    impl Classifier for Constant {
        fn predict(&self, _sample: &[f64]) -> Result<usize, MlError> {
            Ok(self.0)
        }
    }

    #[test]
    fn accuracy_empty_is_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn majority_vote_wins() {
        let e = Ensemble::new(vec![
            Box::new(Constant(1)),
            Box::new(Constant(2)),
            Box::new(Constant(2)),
        ]);
        assert_eq!(e.predict(&[0.0]).unwrap(), 2);
    }

    #[test]
    fn tie_breaks_to_first_vote() {
        let e = Ensemble::new(vec![Box::new(Constant(7)), Box::new(Constant(3))]);
        assert_eq!(e.predict(&[0.0]).unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        let _ = Ensemble::new(Vec::new());
    }

    #[test]
    fn predict_all_maps_rows() {
        let e = Ensemble::new(vec![Box::new(Constant(4))]);
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert_eq!(e.predict_all(&m).unwrap(), vec![4, 4]);
    }
}
