use pka_stats::hash::UnitStream;

use super::Classifier;
use crate::{Matrix, MlError, StandardScaler};

/// Multinomial logistic regression trained by stochastic gradient descent.
///
/// The first of the three classifiers PKA uses to map lightly-profiled
/// kernels onto detailed-profiling groups. Features are standardised
/// internally, and training shuffles with a deterministic stream derived
/// from the seed, so results are reproducible.
///
/// # Examples
///
/// ```
/// use pka_ml::classify::{Classifier, SgdClassifier};
/// use pka_ml::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![0.5], vec![10.0], vec![10.5]])?;
/// let model = SgdClassifier::fit(&x, &[0, 0, 1, 1], 42)?;
/// assert_eq!(model.predict(&[0.2])?, 0);
/// assert_eq!(model.predict(&[10.2])?, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SgdClassifier {
    scaler: StandardScaler,
    classes: Vec<usize>,
    /// `weights[c]` has one weight per feature plus a trailing bias.
    weights: Vec<Vec<f64>>,
}

const EPOCHS: usize = 60;
const LEARNING_RATE: f64 = 0.05;
const L2: f64 = 1e-4;

impl SgdClassifier {
    /// Trains on rows of `x` with class labels `y`.
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyInput`] if `x` has no rows.
    /// * [`MlError::DimensionMismatch`] if `y.len() != x.rows()`.
    pub fn fit(x: &Matrix, y: &[usize], seed: u64) -> Result<Self, MlError> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::EmptyInput);
        }
        if y.len() != x.rows() {
            return Err(MlError::DimensionMismatch {
                expected: x.rows(),
                actual: y.len(),
            });
        }
        let (scaler, xs) = StandardScaler::fit_transform(x)?;

        let mut classes: Vec<usize> = y.to_vec();
        classes.sort_unstable();
        classes.dedup();
        let class_index = |label: usize| classes.iter().position(|&c| c == label).expect("seen");

        let d = x.cols();
        let mut weights = vec![vec![0.0; d + 1]; classes.len()];
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut rng = UnitStream::new(seed ^ 0x5851_f42d_4c95_7f2d);
        // Per-sample score scratch, hoisted out of the epoch loop; the
        // arithmetic is identical to `softmax_scores`, only the allocations
        // are amortised, so the fitted weights are bit-identical.
        let mut probs = vec![0.0; classes.len()];

        for epoch in 0..EPOCHS {
            // Fisher–Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = (rng.next_f64() * (i + 1) as f64) as usize;
                order.swap(i, j);
            }
            let lr = LEARNING_RATE / (1.0 + epoch as f64 * 0.05);
            for &i in &order {
                let row = xs.row(i);
                softmax_scores_into(&weights, row, &mut probs);
                let target = class_index(y[i]);
                for (c, w) in weights.iter_mut().enumerate() {
                    let grad = probs[c] - if c == target { 1.0 } else { 0.0 };
                    for (wj, &xj) in w[..d].iter_mut().zip(row) {
                        *wj -= lr * (grad * xj + L2 * *wj);
                    }
                    w[d] -= lr * grad;
                }
            }
        }

        Ok(Self {
            scaler,
            classes,
            weights,
        })
    }

    /// The distinct class labels seen at fit time, ascending.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }
}

fn softmax_scores(weights: &[Vec<f64>], row: &[f64]) -> Vec<f64> {
    let mut probs = vec![0.0; weights.len()];
    softmax_scores_into(weights, row, &mut probs);
    probs
}

/// Writes per-class softmax probabilities into `probs`: logits in class
/// order, a shared max subtracted for stability, exponentials normalised in
/// place. Every operation matches the original allocating formulation
/// term-for-term, so scores (and therefore argmax decisions) are
/// bit-identical.
fn softmax_scores_into(weights: &[Vec<f64>], row: &[f64], probs: &mut [f64]) {
    let d = row.len();
    for (p, w) in probs.iter_mut().zip(weights) {
        *p = w[..d].iter().zip(row).map(|(a, b)| a * b).sum::<f64>() + w[d];
    }
    let max = probs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for p in probs.iter_mut() {
        *p = (*p - max).exp();
    }
    let sum: f64 = probs.iter().sum();
    for p in probs.iter_mut() {
        *p /= sum;
    }
}

/// Index of the maximum score, matching `Iterator::max_by` over
/// `partial_cmp` (ties resolve to the last maximal index).
fn argmax(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
        .map(|(i, _)| i)
        .expect("at least one class")
}

impl Classifier for SgdClassifier {
    fn predict(&self, sample: &[f64]) -> Result<usize, MlError> {
        let scaled = self.scaler.transform_row(sample)?;
        let probs = softmax_scores(&self.weights, &scaled);
        Ok(self.classes[argmax(&probs)])
    }

    fn predict_into(
        &self,
        samples: &[f64],
        d: usize,
        out: &mut Vec<usize>,
    ) -> Result<(), MlError> {
        crate::classify::check_batch(samples, d)?;
        let mut scaled = vec![0.0; self.scaler.means().len()];
        let mut probs = vec![0.0; self.weights.len()];
        out.clear();
        out.reserve(samples.len() / d);
        for row in samples.chunks_exact(d) {
            self.scaler.transform_row_into(row, &mut scaled)?;
            softmax_scores_into(&self.weights, &scaled, &mut probs);
            out.push(self.classes[argmax(&probs)]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::accuracy;

    fn three_blob_data() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..15 {
            let j = i as f64 * 0.05;
            rows.push(vec![0.0 + j, 0.0]);
            labels.push(0);
            rows.push(vec![10.0, 10.0 + j]);
            labels.push(5);
            rows.push(vec![-10.0 - j, 10.0]);
            labels.push(9);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn separable_data_fits_perfectly() {
        let (x, y) = three_blob_data();
        let model = SgdClassifier::fit(&x, &y, 1).unwrap();
        let pred = model.predict_all(&x).unwrap();
        assert_eq!(accuracy(&pred, &y), 1.0);
    }

    #[test]
    fn preserves_arbitrary_label_values() {
        let (x, y) = three_blob_data();
        let model = SgdClassifier::fit(&x, &y, 1).unwrap();
        assert_eq!(model.classes(), &[0, 5, 9]);
        assert_eq!(model.predict(&[10.0, 10.2]).unwrap(), 5);
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let model = SgdClassifier::fit(&x, &[3, 3], 0).unwrap();
        assert_eq!(model.predict(&[100.0]).unwrap(), 3);
    }

    #[test]
    fn label_length_mismatch_rejected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            SgdClassifier::fit(&x, &[0], 0),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = three_blob_data();
        let a = SgdClassifier::fit(&x, &y, 7).unwrap();
        let b = SgdClassifier::fit(&x, &y, 7).unwrap();
        let probe = vec![3.0, 4.0];
        assert_eq!(a.predict(&probe).unwrap(), b.predict(&probe).unwrap());
    }

    #[test]
    fn wrong_dimension_rejected_at_predict() {
        let (x, y) = three_blob_data();
        let model = SgdClassifier::fit(&x, &y, 1).unwrap();
        assert!(matches!(
            model.predict(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }
}
