use pka_stats::hash::UnitStream;

use super::Classifier;
use crate::{Matrix, MlError, StandardScaler};

/// Multinomial logistic regression trained by stochastic gradient descent.
///
/// The first of the three classifiers PKA uses to map lightly-profiled
/// kernels onto detailed-profiling groups. Features are standardised
/// internally, and training shuffles with a deterministic stream derived
/// from the seed, so results are reproducible.
///
/// # Examples
///
/// ```
/// use pka_ml::classify::{Classifier, SgdClassifier};
/// use pka_ml::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![0.5], vec![10.0], vec![10.5]])?;
/// let model = SgdClassifier::fit(&x, &[0, 0, 1, 1], 42)?;
/// assert_eq!(model.predict(&[0.2])?, 0);
/// assert_eq!(model.predict(&[10.2])?, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SgdClassifier {
    scaler: StandardScaler,
    classes: Vec<usize>,
    /// `weights[c]` has one weight per feature plus a trailing bias.
    weights: Vec<Vec<f64>>,
}

const EPOCHS: usize = 60;
const LEARNING_RATE: f64 = 0.05;
const L2: f64 = 1e-4;

impl SgdClassifier {
    /// Trains on rows of `x` with class labels `y`.
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyInput`] if `x` has no rows.
    /// * [`MlError::DimensionMismatch`] if `y.len() != x.rows()`.
    pub fn fit(x: &Matrix, y: &[usize], seed: u64) -> Result<Self, MlError> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::EmptyInput);
        }
        if y.len() != x.rows() {
            return Err(MlError::DimensionMismatch {
                expected: x.rows(),
                actual: y.len(),
            });
        }
        let (scaler, xs) = StandardScaler::fit_transform(x)?;

        let mut classes: Vec<usize> = y.to_vec();
        classes.sort_unstable();
        classes.dedup();
        let class_index = |label: usize| classes.iter().position(|&c| c == label).expect("seen");

        let d = x.cols();
        let mut weights = vec![vec![0.0; d + 1]; classes.len()];
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut rng = UnitStream::new(seed ^ 0x5851_f42d_4c95_7f2d);

        for epoch in 0..EPOCHS {
            // Fisher–Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = (rng.next_f64() * (i + 1) as f64) as usize;
                order.swap(i, j);
            }
            let lr = LEARNING_RATE / (1.0 + epoch as f64 * 0.05);
            for &i in &order {
                let row = xs.row(i);
                let probs = softmax_scores(&weights, row);
                let target = class_index(y[i]);
                for (c, w) in weights.iter_mut().enumerate() {
                    let grad = probs[c] - if c == target { 1.0 } else { 0.0 };
                    for (wj, &xj) in w[..d].iter_mut().zip(row) {
                        *wj -= lr * (grad * xj + L2 * *wj);
                    }
                    w[d] -= lr * grad;
                }
            }
        }

        Ok(Self {
            scaler,
            classes,
            weights,
        })
    }

    /// The distinct class labels seen at fit time, ascending.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }
}

fn softmax_scores(weights: &[Vec<f64>], row: &[f64]) -> Vec<f64> {
    let d = row.len();
    let logits: Vec<f64> = weights
        .iter()
        .map(|w| w[..d].iter().zip(row).map(|(a, b)| a * b).sum::<f64>() + w[d])
        .collect();
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl Classifier for SgdClassifier {
    fn predict(&self, sample: &[f64]) -> Result<usize, MlError> {
        let scaled = self.scaler.transform_row(sample)?;
        let probs = softmax_scores(&self.weights, &scaled);
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(i, _)| i)
            .expect("at least one class");
        Ok(self.classes[best])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::accuracy;

    fn three_blob_data() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..15 {
            let j = i as f64 * 0.05;
            rows.push(vec![0.0 + j, 0.0]);
            labels.push(0);
            rows.push(vec![10.0, 10.0 + j]);
            labels.push(5);
            rows.push(vec![-10.0 - j, 10.0]);
            labels.push(9);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn separable_data_fits_perfectly() {
        let (x, y) = three_blob_data();
        let model = SgdClassifier::fit(&x, &y, 1).unwrap();
        let pred = model.predict_all(&x).unwrap();
        assert_eq!(accuracy(&pred, &y), 1.0);
    }

    #[test]
    fn preserves_arbitrary_label_values() {
        let (x, y) = three_blob_data();
        let model = SgdClassifier::fit(&x, &y, 1).unwrap();
        assert_eq!(model.classes(), &[0, 5, 9]);
        assert_eq!(model.predict(&[10.0, 10.2]).unwrap(), 5);
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let model = SgdClassifier::fit(&x, &[3, 3], 0).unwrap();
        assert_eq!(model.predict(&[100.0]).unwrap(), 3);
    }

    #[test]
    fn label_length_mismatch_rejected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            SgdClassifier::fit(&x, &[0], 0),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = three_blob_data();
        let a = SgdClassifier::fit(&x, &y, 7).unwrap();
        let b = SgdClassifier::fit(&x, &y, 7).unwrap();
        let probe = vec![3.0, 4.0];
        assert_eq!(a.predict(&probe).unwrap(), b.predict(&probe).unwrap());
    }

    #[test]
    fn wrong_dimension_rejected_at_predict() {
        let (x, y) = three_blob_data();
        let model = SgdClassifier::fit(&x, &y, 1).unwrap();
        assert!(matches!(
            model.predict(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }
}
