//! Differential proof that the batched `predict_into` paths label every row
//! exactly as the per-row `predict` reference: same classifiers, same inputs,
//! bit-identical score arithmetic, therefore identical labels. The streaming
//! shard engine leans on this equivalence for its selection-parity contract.

use pka_ml::classify::{Classifier, Ensemble, GaussianNb, MlpClassifier, SgdClassifier};
use pka_ml::{Matrix, MlError};
use pka_stats::hash::UnitStream;

const D: usize = 12;

/// A deterministic blobs dataset: `n` rows around `k` centres, plus a noise
/// floor so classes overlap near their boundaries (the regime where argmax
/// ties and near-ties live).
fn blobs(n: usize, k: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = UnitStream::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        let row: Vec<f64> = (0..D)
            .map(|j| ((c * 7 + j * 3) % 11) as f64 + rng.next_range(-1.5, 1.5))
            .collect();
        rows.push(row);
        labels.push(c);
    }
    (Matrix::from_rows(&rows).unwrap(), labels)
}

fn flat(m: &Matrix) -> Vec<f64> {
    m.as_slice().to_vec()
}

fn assert_batch_matches(clf: &dyn Classifier, data: &Matrix) {
    let mut batched = Vec::new();
    clf.predict_into(&flat(data), D, &mut batched).unwrap();
    let per_row: Vec<usize> = data
        .iter_rows()
        .map(|r| clf.predict(r).unwrap())
        .collect();
    assert_eq!(batched, per_row);
}

#[test]
fn sgd_batch_matches_per_row() {
    let (x, y) = blobs(400, 7, 11);
    let clf = SgdClassifier::fit(&x, &y, 3).unwrap();
    let (probe, _) = blobs(2000, 7, 99);
    assert_batch_matches(&clf, &probe);
}

#[test]
fn gnb_batch_matches_per_row() {
    let (x, y) = blobs(400, 7, 22);
    let clf = GaussianNb::fit(&x, &y).unwrap();
    let (probe, _) = blobs(2000, 7, 98);
    assert_batch_matches(&clf, &probe);
}

#[test]
fn mlp_batch_matches_per_row() {
    let (x, y) = blobs(400, 7, 33);
    let clf = MlpClassifier::fit(&x, &y, 5).unwrap();
    let (probe, _) = blobs(2000, 7, 97);
    assert_batch_matches(&clf, &probe);
}

#[test]
fn ensemble_batch_matches_per_row_including_disagreements() {
    // Train the third member with rotated labels so the outer members
    // disagree on a large fraction of rows and the lazy middle vote runs.
    let (x, y) = blobs(400, 7, 44);
    let (x2, y2) = blobs(150, 7, 55);
    let (x3, y3) = blobs(90, 7, 66);
    let y3_rotated: Vec<usize> = y3.iter().map(|&c| (c + 1) % 7).collect();
    let ensemble = Ensemble::new(vec![
        Box::new(SgdClassifier::fit(&x, &y, 3).unwrap()),
        Box::new(GaussianNb::fit(&x2, &y2).unwrap()),
        Box::new(MlpClassifier::fit(&x3, &y3_rotated, 5).unwrap()),
    ]);
    let (probe, _) = blobs(4000, 7, 96);
    let mut outer = Vec::new();
    let mut mid = Vec::new();
    ensemble.members()[0]
        .predict_into(&flat(&probe), D, &mut outer)
        .unwrap();
    ensemble.members()[2]
        .predict_into(&flat(&probe), D, &mut mid)
        .unwrap();
    let disagreements = outer.iter().zip(&mid).filter(|(a, c)| a != c).count();
    assert!(
        disagreements > 0,
        "probe set never exercises the lazy middle member"
    );
    assert_batch_matches(&ensemble, &probe);
}

#[test]
fn non_three_member_ensembles_fall_back_to_per_row() {
    let (x, y) = blobs(200, 5, 77);
    let one = Ensemble::new(vec![Box::new(GaussianNb::fit(&x, &y).unwrap())]);
    let (probe, _) = blobs(500, 5, 95);
    assert_batch_matches(&one, &probe);
}

#[test]
fn batch_shape_errors_are_rejected() {
    let (x, y) = blobs(50, 3, 88);
    let clf = SgdClassifier::fit(&x, &y, 0).unwrap();
    let mut out = Vec::new();
    assert!(matches!(
        clf.predict_into(&[1.0, 2.0, 3.0], 2, &mut out),
        Err(MlError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        clf.predict_into(&[1.0, 2.0], 0, &mut out),
        Err(MlError::DimensionMismatch { .. })
    ));
    let gnb = GaussianNb::fit(&x, &y).unwrap();
    assert!(matches!(
        gnb.predict_into(&[1.0, 2.0], 2, &mut out),
        Err(MlError::DimensionMismatch { .. })
    ));
}
