//! Tie-breaking contracts for the two-level classifier ensemble.
//!
//! PKA's streaming and batch tail classification must agree bitwise for any
//! worker count, which requires every argmax in the classifiers to resolve
//! ties the same way on every run. These tests pin the rules:
//!
//! * per-model argmax uses `Iterator::max_by`, which keeps the **last**
//!   maximal element — class labels are stored ascending, so an exact
//!   posterior/score tie resolves to the **highest class label**;
//! * the [`Ensemble`] majority vote breaks count ties toward the
//!   **earliest member's vote** (SGD first in the default PKA stack);
//! * predictions are pure functions of (model, sample), so fanning a batch
//!   out over any [`Executor`] width relabels nothing.

use pka_ml::classify::{Classifier, Ensemble, GaussianNb, MlpClassifier, SgdClassifier};
use pka_ml::{Matrix, MlError};
use pka_stats::Executor;

/// A stub member with a fixed opinion, for engineering exact vote ties.
#[derive(Debug)]
struct Fixed(usize);

impl Classifier for Fixed {
    fn predict(&self, _sample: &[f64]) -> Result<usize, MlError> {
        Ok(self.0)
    }
}

/// Two classes mirrored around the origin: the midpoint sample `0.0` has
/// exactly equal Gaussian log-posteriors (same priors, same variances,
/// means at `-1` and `+1`).
fn mirrored_gnb() -> GaussianNb {
    let x = Matrix::from_rows(&[
        vec![-1.5],
        vec![-0.5],
        vec![0.5],
        vec![1.5],
    ])
    .unwrap();
    // Deliberately non-contiguous labels, listed out of order: `classes()`
    // must sort them, and the tie must go to the *label* order, not the
    // order of first appearance.
    let y = [5, 5, 2, 2];
    GaussianNb::fit(&x, &y).unwrap()
}

#[test]
fn gnb_equal_posterior_tie_resolves_to_highest_label() {
    let gnb = mirrored_gnb();
    assert_eq!(gnb.classes(), &[2, 5], "labels are stored ascending");
    // Strictly inside either lobe the argmax is unambiguous...
    assert_eq!(gnb.predict(&[-1.0]).unwrap(), 5);
    assert_eq!(gnb.predict(&[1.0]).unwrap(), 2);
    // ...and the exact tie at the midpoint picks the last (= highest) label.
    assert_eq!(gnb.predict(&[0.0]).unwrap(), 5);
}

#[test]
fn ensemble_vote_count_tie_goes_to_the_earliest_member() {
    // 1-1 split: the first member's vote wins.
    let e = Ensemble::new(vec![Box::new(Fixed(2)), Box::new(Fixed(5))]);
    assert_eq!(e.predict(&[0.0]).unwrap(), 2);
    let e = Ensemble::new(vec![Box::new(Fixed(5)), Box::new(Fixed(2))]);
    assert_eq!(e.predict(&[0.0]).unwrap(), 5);

    // A real member first: the tied GNB votes 5 at the midpoint, the stub
    // disagrees, and the earliest vote (GNB's) carries.
    let e = Ensemble::new(vec![Box::new(mirrored_gnb()), Box::new(Fixed(2))]);
    assert_eq!(e.predict(&[0.0]).unwrap(), 5);

    // 2-2 split with four members: still the earliest vote, not the larger
    // label or the later pair.
    let e = Ensemble::new(vec![
        Box::new(Fixed(3)),
        Box::new(Fixed(1)),
        Box::new(Fixed(1)),
        Box::new(Fixed(3)),
    ]);
    assert_eq!(e.predict(&[0.5]).unwrap(), 3);
}

#[test]
fn refit_with_same_seed_reproduces_every_prediction() {
    // Mirrored training data puts the decision boundary through the origin,
    // so a grid straddling it probes near-tie scores on all three models.
    let x = Matrix::from_rows(&[
        vec![-2.0, 1.0],
        vec![-1.0, 0.5],
        vec![1.0, -0.5],
        vec![2.0, -1.0],
    ])
    .unwrap();
    let y = [0, 0, 1, 1];
    let grid: Vec<Vec<f64>> = (-8..=8)
        .map(|i| vec![i as f64 / 4.0, -(i as f64) / 8.0])
        .collect();
    let predict_grid = |c: &dyn Classifier| -> Vec<usize> {
        grid.iter().map(|s| c.predict(s).unwrap()).collect()
    };

    let sgd_a = predict_grid(&SgdClassifier::fit(&x, &y, 7).unwrap());
    let sgd_b = predict_grid(&SgdClassifier::fit(&x, &y, 7).unwrap());
    assert_eq!(sgd_a, sgd_b, "SGD refit with the same seed is bit-stable");

    let mlp_a = predict_grid(&MlpClassifier::fit(&x, &y, 7).unwrap());
    let mlp_b = predict_grid(&MlpClassifier::fit(&x, &y, 7).unwrap());
    assert_eq!(mlp_a, mlp_b, "MLP refit with the same seed is bit-stable");

    let gnb_a = predict_grid(&GaussianNb::fit(&x, &y).unwrap());
    let gnb_b = predict_grid(&GaussianNb::fit(&x, &y).unwrap());
    assert_eq!(gnb_a, gnb_b, "GNB refit is bit-stable");
}

#[test]
fn tie_labels_are_identical_across_worker_counts() {
    // The streaming tail classifies chunks through Executor::try_map; labels
    // for tie-heavy samples must not depend on the fan-out width.
    let gnb = mirrored_gnb();
    let ensemble = Ensemble::new(vec![Box::new(mirrored_gnb()), Box::new(Fixed(2))]);
    // Every sample sits exactly on the GNB decision boundary.
    let samples: Vec<Vec<f64>> = (0..997).map(|_| vec![0.0]).collect();

    let labels_with = |exec: Executor, model: &(dyn Classifier + Sync)| -> Vec<usize> {
        exec.try_map(&samples, |_, s| model.predict(s))
            .expect("in-dimension samples classify")
    };

    let gnb_seq = labels_with(Executor::sequential(), &gnb);
    assert!(gnb_seq.iter().all(|&l| l == 5), "tie resolves high everywhere");
    let ens_seq = labels_with(Executor::sequential(), &ensemble);
    assert!(ens_seq.iter().all(|&l| l == 5), "earliest vote everywhere");
    for workers in [2, 4] {
        let exec = Executor::new(workers);
        assert_eq!(labels_with(exec, &gnb), gnb_seq, "workers={workers}");
        assert_eq!(labels_with(exec, &ensemble), ens_seq, "workers={workers}");
    }
}
