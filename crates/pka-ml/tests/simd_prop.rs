//! Property-based differential fuzzing of the SIMD kernels.
//!
//! The deterministic parity suite walks fixed dimension/shape grids; this
//! one lets proptest hunt for divergent inputs — random shapes, random
//! values drawn from a distribution that over-weights NaN, infinities,
//! signed zeros and denormals. Every property compares a vector tier
//! against the scalar reference with raw `f64` bit equality, so a
//! shrunk counterexample pinpoints the exact lane arithmetic at fault.

use pka_ml::simd::{self, HamerlySlices, InterleavedRows, SimdTier, TransposedPoints};
use pka_ml::Matrix;
use proptest::prelude::*;

/// Every tier the host supports, scalar first.
fn tiers() -> Vec<SimdTier> {
    let mut out = vec![SimdTier::Scalar];
    match simd::detect_tier() {
        SimdTier::Avx2 => out.extend([SimdTier::Sse41, SimdTier::Avx2]),
        SimdTier::Sse41 => out.push(SimdTier::Sse41),
        SimdTier::Scalar => {}
    }
    out
}

/// An `f64` that is frequently adversarial: one in three draws is a
/// special value the IEEE bit-compare must survive.
fn hostile_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -1e9f64..1e9f64,
        1 => prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(0.0),
            Just(-0.0),
            Just(5e-324),
            Just(1e-308),
            Just(f64::MAX),
        ],
        1 => -1e-300f64..1e-300f64,
    ]
}

fn hostile_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(hostile_f64(), len)
}

/// Bit pattern with NaNs canonicalised: IEEE 754 leaves NaN sign and
/// payload propagation unspecified (x86 `inf - inf` yields the negative
/// "real indefinite", and operand commutation picks which input NaN
/// survives), so any NaN compares equal to any NaN; everything else is
/// exact to the bit.
fn canon(x: f64) -> u64 {
    if x.is_nan() {
        0x7ff8_0000_0000_0000
    } else {
        x.to_bits()
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| canon(*x)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sq_dist_batch_parity(
        d in 1usize..17,
        rows in 0usize..34,
        seed in any::<u64>(),
    ) {
        let flat = seeded_values(rows * d, seed);
        let point = seeded_values(d, seed ^ 0x1234);
        let reference: Vec<f64> = (0..rows)
            .map(|r| Matrix::sq_dist_hot(&point, &flat[r * d..(r + 1) * d]))
            .collect();
        for tier in tiers() {
            let inter = InterleavedRows::build(tier, &flat, d);
            let mut out = vec![0.0f64; rows];
            simd::sq_dist_batch(&point, &inter, &mut out);
            prop_assert!(bits(&out) == bits(&reference), "{:?} d={} rows={}", tier, d, rows);
        }
    }

    #[test]
    fn scan_points_parity(
        d in 1usize..17,
        k in 1usize..10,
        data in hostile_vec(64),
        centroids in hostile_vec(160),
        m in 0usize..12,
    ) {
        let n = data.len() / d;
        prop_assume!(n > 0 && centroids.len() >= k * d);
        let centroids = &centroids[..k * d];
        let indices: Vec<u32> = (0..m).map(|i| ((i * 13 + 5) % n) as u32).collect();
        let mut reference = Vec::new();
        simd::scan_points(SimdTier::Scalar, &data[..n * d], d, &indices, centroids, k, &mut reference);
        let key = |t: &(u32, f64, f64)| (t.0, canon(t.1), canon(t.2));
        for tier in tiers() {
            let mut out = Vec::new();
            simd::scan_points(tier, &data[..n * d], d, &indices, centroids, k, &mut out);
            prop_assert!(
                out.iter().map(key).collect::<Vec<_>>()
                    == reference.iter().map(key).collect::<Vec<_>>(),
                "{:?} d={} k={} m={}", tier, d, k, m
            );
        }
    }

    #[test]
    fn prune_survivors_parity(
        n in 0usize..80,
        k in 1usize..9,
        upper in hostile_vec(80),
        lower in hostile_vec(80),
        drift in hostile_vec(9),
        cum_max in -1e3f64..1e3f64,
    ) {
        let upper = &upper[..n];
        let lower = &lower[..n];
        let snap_upper: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.75).collect();
        let snap_lower: Vec<f64> = (0..n).map(|i| (i % 3) as f64 * 1.25).collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 7 + 2) % k).collect();
        let cum_drift = &drift[..k];
        let cum_excl: Vec<f64> = drift[..k].iter().map(|x| x.abs()).collect();
        let s_half: Vec<f64> = (0..k).map(|c| c as f64 * 2.5).collect();
        let hs = HamerlySlices {
            upper,
            snap_upper: &snap_upper,
            lower,
            snap_lower: &snap_lower,
            labels: &labels,
            cum_drift,
            cum_excl: &cum_excl,
            s_half: &s_half,
            cum_max,
        };
        let mut reference = Vec::new();
        simd::prune_survivors(SimdTier::Scalar, &hs, &mut reference);
        let key = |s: &simd::Survivor| (s.index, canon(s.u), canon(s.l));
        for tier in tiers() {
            let mut out = Vec::new();
            simd::prune_survivors(tier, &hs, &mut out);
            prop_assert!(
                out.iter().map(key).collect::<Vec<_>>()
                    == reference.iter().map(key).collect::<Vec<_>>(),
                "{:?} n={} k={}", tier, n, k
            );
        }
    }

    #[test]
    fn sq_dist_to_point_parity(
        d in 1usize..17,
        n in 0usize..34,
        seed in any::<u64>(),
    ) {
        let flat = seeded_values(n * d, seed);
        let c = seeded_values(d, seed ^ 0xBEEF);
        let scalar_xt = TransposedPoints::build(SimdTier::Scalar, &flat, n, d);
        let mut reference = vec![0.0f64; n];
        simd::sq_dist_to_point(&scalar_xt, &c, &mut reference);
        for tier in tiers() {
            let xt = TransposedPoints::build(tier, &flat, n, d);
            let mut out = vec![0.0f64; n];
            simd::sq_dist_to_point(&xt, &c, &mut out);
            prop_assert!(bits(&out) == bits(&reference), "{:?} d={} n={}", tier, d, n);
        }
    }

    #[test]
    fn fast_math_bound(
        d in 1usize..65,
        seed in any::<u64>(),
    ) {
        const EPS: f64 = f64::EPSILON / 2.0;
        // Finite values only: the bound is a statement about rounding, not
        // about NaN/inf propagation (those stay on the exact tier).
        let mut rng = SplitMix(seed);
        let a: Vec<f64> = (0..d).map(|_| rng.uniform(-1e6, 1e6)).collect();
        let b: Vec<f64> = (0..d).map(|_| rng.uniform(-1e6, 1e6)).collect();
        let exact = Matrix::sq_dist_hot(&a, &b);
        for tier in tiers() {
            let fast = simd::sq_dist_fast(tier, &a, &b);
            prop_assert!(
                (fast - exact).abs() <= 2.0 * d as f64 * EPS * exact,
                "{:?} d={}: {} vs {}", tier, d, fast, exact
            );
        }
    }
}

/// Deterministic hostile values from a seed: a SplitMix64 stream with
/// specials injected at a fixed cadence, so shrinking stays reproducible.
fn seeded_values(n: usize, seed: u64) -> Vec<f64> {
    const SPECIALS: [f64; 8] = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        5e-324,
        1e-308,
        f64::MAX,
    ];
    let mut rng = SplitMix(seed);
    (0..n)
        .map(|i| {
            if i % 4 == 2 {
                SPECIALS[(i / 4) % SPECIALS.len()]
            } else {
                rng.uniform(-1e6, 1e6)
            }
        })
        .collect()
}

/// Minimal SplitMix64 so value generation is independent of proptest's
/// shrinking (only the seed shrinks, not the stream).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}
