//! Expansion of declarative kernel descriptors into per-warp instruction
//! streams.
//!
//! Storing a full trace for every warp of a million-block grid is exactly
//! the scalability wall the paper describes for trace-driven simulation, so
//! the program is stored once, in compressed loop form, and each warp walks
//! it with a tiny [`WarpCursor`].

use pka_gpu::{InstClass, KernelDescriptor};

/// One loop segment: a body of instructions executed `iterations` times.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Segment {
    body: Vec<InstClass>,
    iterations: u32,
}

/// A compressed per-warp dynamic instruction stream.
///
/// Derived deterministically from a [`KernelDescriptor`]: instruction
/// counts are folded into a steady-state loop body (one segment per kernel
/// phase), so every warp executes `instructions_per_thread` instructions
/// with the descriptor's class mix, while storage stays `O(body length)`.
///
/// # Examples
///
/// ```
/// use pka_gpu::KernelDescriptor;
/// use pka_sim::WarpProgram;
///
/// let k = KernelDescriptor::builder("k")
///     .fp32_per_thread(64)
///     .global_loads_per_thread(16)
///     .build()?;
/// let program = WarpProgram::from_descriptor(&k);
/// assert_eq!(program.len(), k.instructions_per_thread());
/// # Ok::<(), pka_gpu::GpuError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpProgram {
    segments: Vec<Segment>,
    total: u64,
}

/// Target steady-state loop body length, instructions.
const TARGET_BODY_LEN: u32 = 24;

impl WarpProgram {
    /// Builds the program for one warp of `kernel`.
    pub fn from_descriptor(kernel: &KernelDescriptor) -> Self {
        let per_thread = kernel.instructions_per_thread();
        // How many loop iterations the whole kernel runs.
        let iterations_total = (per_thread / TARGET_BODY_LEN as u64).clamp(1, u32::MAX as u64) as u32;

        let mut segments = Vec::new();
        let mut remaining: Vec<(InstClass, u64)> = InstClass::ALL
            .iter()
            .map(|&c| (c, kernel.count(c) as u64))
            .collect();

        // Distribute iterations across phases; memory-heavier phases get the
        // same instruction budget but a mix skewed by `mem_scale`.
        let phases = kernel.phases();
        let mut iters_left = iterations_total;
        for (pi, phase) in phases.iter().enumerate() {
            let iters = if pi + 1 == phases.len() {
                iters_left
            } else {
                ((iterations_total as f64 * phase.fraction).round() as u32).min(iters_left)
            };
            iters_left -= iters;
            if iters == 0 {
                continue;
            }
            // Build this phase's body: per class, the share of the remaining
            // count proportional to iterations, skewed for memory classes.
            let mut body = Vec::with_capacity(TARGET_BODY_LEN as usize);
            for (class, left) in remaining.iter_mut() {
                if *left == 0 {
                    continue;
                }
                let share = (*left as f64 * iters as f64 / (iters as f64 + iters_left as f64))
                    .round() as u64;
                let share = share.min(*left);
                let skew = if class.is_global_memory() {
                    phase.mem_scale
                } else {
                    phase.compute_scale
                };
                // Per-iteration count for this class in this phase.
                let mut per_iter = ((share as f64 / iters as f64) * skew).round() as u64;
                if share > 0 && per_iter == 0 {
                    per_iter = 1;
                }
                let per_iter = per_iter.min(share.max(1)).min(*left / iters as u64 + 1);
                for _ in 0..per_iter {
                    body.push(*class);
                }
                *left = left.saturating_sub(per_iter * iters as u64);
            }
            if body.is_empty() {
                body.push(InstClass::Int);
            }
            interleave(&mut body);
            segments.push(Segment {
                body,
                iterations: iters,
            });
        }

        // Epilogue: whatever rounding left over, executed once.
        let mut epilogue: Vec<InstClass> = Vec::new();
        for (class, left) in remaining {
            for _ in 0..left {
                epilogue.push(class);
            }
        }
        // Fix up the total so the trace retires exactly
        // `instructions_per_thread` instructions.
        let so_far: u64 = segments
            .iter()
            .map(|s| s.body.len() as u64 * s.iterations as u64)
            .sum::<u64>()
            + epilogue.len() as u64;
        match so_far.cmp(&per_thread) {
            std::cmp::Ordering::Less => {
                for _ in 0..(per_thread - so_far) {
                    epilogue.push(InstClass::Int);
                }
            }
            std::cmp::Ordering::Greater => {
                let excess = (so_far - per_thread) as usize;
                if excess <= epilogue.len() {
                    epilogue.truncate(epilogue.len() - excess);
                } else {
                    // Shave iterations off the last loop segment.
                    let mut excess = excess as u64 - epilogue.len() as u64;
                    epilogue.clear();
                    while excess > 0 {
                        let n_segments = segments.len();
                        let seg = segments.last_mut().expect("at least one segment");
                        let body_len = seg.body.len() as u64;
                        let drop_iters = (excess / body_len).min(seg.iterations as u64 - 1);
                        seg.iterations -= drop_iters as u32;
                        excess -= drop_iters * body_len;
                        if excess == 0 {
                            break;
                        }
                        if excess >= body_len && seg.iterations == 1 && n_segments > 1 {
                            excess -= body_len;
                            segments.pop();
                        } else {
                            // Partial body remainder: move to epilogue.
                            seg.iterations -= 1;
                            let keep = body_len - excess;
                            epilogue = seg.body[..keep as usize].to_vec();
                            excess = 0;
                        }
                    }
                }
            }
            std::cmp::Ordering::Equal => {}
        }
        if !epilogue.is_empty() {
            interleave(&mut epilogue);
            segments.push(Segment {
                body: epilogue,
                iterations: 1,
            });
        }

        let total = segments
            .iter()
            .map(|s| s.body.len() as u64 * s.iterations as u64)
            .sum();
        WarpProgram { segments, total }
    }

    /// Total dynamic instructions one warp executes.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Returns `true` for a program with no instructions (never produced
    /// from a valid descriptor).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Starts a cursor at the first instruction.
    pub fn cursor(&self) -> WarpCursor {
        WarpCursor {
            segment: 0,
            iteration: 0,
            pc: 0,
            executed: 0,
        }
    }

    /// Fetches the instruction at a cursor, or `None` past the end.
    pub fn fetch(&self, cursor: &WarpCursor) -> Option<InstClass> {
        self.segments
            .get(cursor.segment)
            .map(|s| s.body[cursor.pc])
    }

    /// Advances a cursor past the instruction it points at.
    pub fn advance(&self, cursor: &mut WarpCursor) {
        let seg = &self.segments[cursor.segment];
        cursor.executed += 1;
        cursor.pc += 1;
        if cursor.pc == seg.body.len() {
            cursor.pc = 0;
            cursor.iteration += 1;
            if cursor.iteration == seg.iterations {
                cursor.iteration = 0;
                cursor.segment += 1;
            }
        }
    }
}

/// Spreads identical instruction classes apart so memory operations are not
/// all back-to-back (round-robin interleave by class).
fn interleave(body: &mut [InstClass]) {
    body.sort_by_key(|c| *c as usize);
    let n = body.len();
    let mut out = Vec::with_capacity(n);
    let half = n.div_ceil(2);
    for i in 0..half {
        out.push(body[i]);
        if half + i < n {
            out.push(body[half + i]);
        }
    }
    body.copy_from_slice(&out);
}

/// A warp's position within a [`WarpProgram`] — 16 bytes per warp, however
/// long the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarpCursor {
    segment: usize,
    iteration: u32,
    pc: usize,
    executed: u64,
}

impl WarpCursor {
    /// Instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pka_gpu::KernelPhase;

    fn drain(program: &WarpProgram) -> Vec<InstClass> {
        let mut out = Vec::new();
        let mut cur = program.cursor();
        while let Some(inst) = program.fetch(&cur) {
            out.push(inst);
            program.advance(&mut cur);
        }
        out
    }

    fn kernel(fp32: u32, loads: u32) -> KernelDescriptor {
        KernelDescriptor::builder("k")
            .fp32_per_thread(fp32)
            .global_loads_per_thread(loads)
            .build()
            .unwrap()
    }

    #[test]
    fn trace_length_matches_descriptor_exactly() {
        for (fp, ld) in [(1, 0), (10, 3), (100, 17), (5000, 421), (7, 7)] {
            let k = kernel(fp, ld);
            let p = WarpProgram::from_descriptor(&k);
            assert_eq!(p.len(), k.instructions_per_thread(), "fp={fp} ld={ld}");
            assert_eq!(drain(&p).len() as u64, p.len());
        }
    }

    #[test]
    fn class_counts_match_descriptor() {
        let k = kernel(97, 13);
        let p = WarpProgram::from_descriptor(&k);
        let insts = drain(&p);
        let count = |c: InstClass| insts.iter().filter(|&&x| x == c).count() as u32;
        // Loop-fitting may substitute filler Int for rounding remainders, but
        // memory operations must be preserved within a small tolerance and
        // totals must be exact.
        assert_eq!(insts.len() as u64, k.instructions_per_thread());
        let ld = count(InstClass::LdGlobal);
        assert!((ld as i64 - 13).abs() <= 2, "ld={ld}");
    }

    #[test]
    fn memory_ops_are_interleaved_not_clumped() {
        let k = kernel(64, 16);
        let p = WarpProgram::from_descriptor(&k);
        let insts = drain(&p);
        // No run of 8 consecutive memory instructions in a 4:1 mix.
        let mut run = 0;
        for i in insts {
            if i.is_global_memory() {
                run += 1;
                assert!(run < 8, "memory ops clumped");
            } else {
                run = 0;
            }
        }
    }

    #[test]
    fn phases_shift_memory_density() {
        let k = KernelDescriptor::builder("phased")
            .fp32_per_thread(2000)
            .global_loads_per_thread(200)
            .phases(vec![
                KernelPhase {
                    fraction: 0.5,
                    mem_scale: 2.0,
                    compute_scale: 0.6,
                },
                KernelPhase {
                    fraction: 0.5,
                    mem_scale: 0.3,
                    compute_scale: 1.4,
                },
            ])
            .build()
            .unwrap();
        let p = WarpProgram::from_descriptor(&k);
        let insts = drain(&p);
        assert_eq!(insts.len() as u64, k.instructions_per_thread());
        let half = insts.len() / 2;
        let mem_first = insts[..half]
            .iter()
            .filter(|c| c.is_global_memory())
            .count();
        let mem_second = insts[half..]
            .iter()
            .filter(|c| c.is_global_memory())
            .count();
        assert!(
            mem_first > mem_second * 2,
            "first {mem_first} vs second {mem_second}"
        );
    }

    #[test]
    fn tiny_kernel_single_instruction() {
        let k = KernelDescriptor::builder("one")
            .int_per_thread(1)
            .branches_per_thread(0)
            .build()
            .unwrap();
        let p = WarpProgram::from_descriptor(&k);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn cursor_tracks_executed() {
        let k = kernel(20, 4);
        let p = WarpProgram::from_descriptor(&k);
        let mut cur = p.cursor();
        for expected in 0..p.len() {
            assert_eq!(cur.executed(), expected);
            assert!(p.fetch(&cur).is_some());
            p.advance(&mut cur);
        }
        assert!(p.fetch(&cur).is_none());
    }
}
