use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

use pka_gpu::{
    base_latency, warp_throughput, GpuConfig, GpuError, InstClass, KernelDescriptor, Occupancy,
};
use pka_stats::hash::{mix64, UnitStream};

use crate::cache::SetAssocCache;
use crate::dram::DramModel;
use crate::icnt::Interconnect;
use crate::monitor::{IpcSample, NullMonitor, SampleContext, SimControl, SimMonitor};
use crate::trace::{WarpCursor, WarpProgram};

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The kernel cannot run on the configured GPU.
    Gpu(GpuError),
    /// The cycle safety budget was exhausted before the kernel finished or a
    /// monitor stopped it (almost certainly a configuration mistake).
    CycleBudgetExhausted {
        /// The budget that was exhausted.
        max_cycles: u64,
    },
    /// A [`SimOptions`] setter was given an out-of-range value.
    InvalidOption {
        /// The option that rejected the value.
        option: &'static str,
        /// Why the value was rejected.
        reason: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Gpu(e) => write!(f, "gpu error: {e}"),
            SimError::CycleBudgetExhausted { max_cycles } => {
                write!(f, "simulation exceeded the {max_cycles}-cycle safety budget")
            }
            SimError::InvalidOption { option, reason } => {
                write!(f, "invalid simulation option {option}: {reason}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Gpu(e) => Some(e),
            SimError::CycleBudgetExhausted { .. } | SimError::InvalidOption { .. } => None,
        }
    }
}

#[doc(hidden)]
impl From<GpuError> for SimError {
    fn from(e: GpuError) -> Self {
        SimError::Gpu(e)
    }
}

/// Tuning knobs for a simulation run.
///
/// # Examples
///
/// ```
/// use pka_sim::SimOptions;
///
/// let opts = SimOptions::default().with_sample_interval(500)?;
/// assert_eq!(opts.sample_interval(), 500);
/// # Ok::<(), pka_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    sample_interval: u64,
    max_cycles: u64,
    interconnect: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            sample_interval: 200,
            max_cycles: 2_000_000_000,
            interconnect: false,
        }
    }
}

impl SimOptions {
    /// Sets the IPC sampling interval in cycles (also the monitor callback
    /// cadence). The paper's PKP window of 3000 cycles corresponds to 15
    /// samples at the default interval of 200.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidOption`] if `interval` is zero — a zero
    /// interval would make the sampling loop never advance.
    pub fn with_sample_interval(self, interval: u64) -> Result<Self, SimError> {
        if interval == 0 {
            return Err(SimError::InvalidOption {
                option: "sample_interval",
                reason: "must be positive",
            });
        }
        Ok(Self {
            sample_interval: interval,
            ..self
        })
    }

    /// Sets the hard cycle safety budget.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// The IPC sampling interval in cycles.
    pub fn sample_interval(&self) -> u64 {
        self.sample_interval
    }

    /// The hard cycle safety budget.
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Enables the SM-to-L2 interconnect backpressure model (see
    /// [`Interconnect`](crate::Interconnect)). Off by default: the flat L2
    /// latency already folds in the average crossing, and the PKA
    /// experiments use the default.
    pub fn with_interconnect(mut self, enabled: bool) -> Self {
        self.interconnect = enabled;
        self
    }

    /// Whether the interconnect backpressure model is enabled.
    pub fn interconnect(&self) -> bool {
        self.interconnect
    }
}

/// Result of simulating (part of) one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSimResult {
    /// Cycles simulated (up to the stop point for early stops).
    pub cycles: u64,
    /// Warp instructions retired.
    pub instructions: u64,
    /// Total warp instructions the full kernel would retire.
    pub instructions_total: u64,
    /// Launch-overhead cycles included in `cycles` (constant per kernel;
    /// projections must extrapolate on execution cycles only).
    pub launch_overhead_cycles: u64,
    /// Average device IPC over the simulated region.
    pub warp_ipc: f64,
    /// Sampled instantaneous-IPC series (one entry per sampling interval).
    pub ipc_series: Vec<IpcSample>,
    /// DRAM bandwidth utilisation over the simulated region, percent.
    pub dram_util_pct: f64,
    /// L2 miss rate, percent.
    pub l2_miss_rate_pct: f64,
    /// L1 miss rate, percent.
    pub l1_miss_rate_pct: f64,
    /// Thread blocks fully retired at the stop point.
    pub blocks_completed: u64,
    /// Total thread blocks in the grid.
    pub blocks_total: u64,
    /// Blocks per wave at this kernel's occupancy.
    pub wave_blocks: u64,
    /// `true` if a monitor stopped the kernel before completion.
    pub early_stop: bool,
}

impl KernelSimResult {
    /// Linearly projects total kernel cycles from the completion state, the
    /// way Principal Kernel Projection does: unfinished thread blocks are
    /// assumed to retire at the observed blocks-per-cycle rate.
    ///
    /// Returns the simulated cycle count unchanged when the kernel ran to
    /// completion or no block ever finished (nothing to extrapolate from).
    pub fn projected_total_cycles(&self) -> u64 {
        if !self.early_stop || self.blocks_completed == 0 {
            return self.projected_total_cycles_by_instructions();
        }
        let exec = self.cycles.saturating_sub(self.launch_overhead_cycles);
        let remaining = self.blocks_total.saturating_sub(self.blocks_completed);
        let per_block = exec as f64 / self.blocks_completed as f64;
        self.cycles + (remaining as f64 * per_block) as u64
    }

    /// Projects total cycles from the remaining *instructions* at the
    /// observed average IPC. PKP uses this form for sub-wave grids, where
    /// the wave constraint is waived and no thread block may have finished
    /// yet (Section 3.2).
    pub fn projected_total_cycles_by_instructions(&self) -> u64 {
        if !self.early_stop || self.instructions == 0 {
            return self.cycles;
        }
        let exec = self.cycles.saturating_sub(self.launch_overhead_cycles).max(1);
        let remaining = self.instructions_total.saturating_sub(self.instructions) as f64;
        let ipc = self.instructions as f64 / exec as f64;
        self.cycles + (remaining / ipc) as u64
    }
}

/// The cycle-level GPU timing simulator.
///
/// See the [crate documentation](crate) for the model description; a single
/// `Simulator` is immutable and can run any number of kernels.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: GpuConfig,
    options: SimOptions,
}

impl Simulator {
    /// Creates a simulator for `config`.
    pub fn new(config: GpuConfig, options: SimOptions) -> Self {
        Self { config, options }
    }

    /// The simulated architecture.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The run options.
    pub fn options(&self) -> &SimOptions {
        &self.options
    }

    /// Simulates `kernel` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Gpu`] for unlaunchable kernels and
    /// [`SimError::CycleBudgetExhausted`] if the safety budget trips.
    pub fn run_kernel(&self, kernel: &KernelDescriptor) -> Result<KernelSimResult, SimError> {
        self.run_kernel_monitored(kernel, &mut NullMonitor)
    }

    /// Simulates `kernel` under an online monitor (the PKP integration
    /// point).
    ///
    /// # Errors
    ///
    /// Same as [`run_kernel`](Self::run_kernel).
    pub fn run_kernel_monitored(
        &self,
        kernel: &KernelDescriptor,
        monitor: &mut dyn SimMonitor,
    ) -> Result<KernelSimResult, SimError> {
        if !pka_obs::enabled() {
            return Engine::new(&self.config, &self.options, kernel)?.run(monitor);
        }
        // Stage time is accumulated directly (no span) so a fullsim over
        // tens of thousands of kernels does not flood the trace sink with
        // one line per kernel.
        let start = std::time::Instant::now();
        let result = Engine::new(&self.config, &self.options, kernel)?.run(monitor);
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        pka_obs::stage("sim.run_kernel").record_ns(ns);
        if let Ok(r) = &result {
            let obs = sim_obs();
            obs.kernels.incr();
            obs.cycles.add(r.cycles);
            obs.instructions.add(r.instructions);
            if r.early_stop {
                obs.early_stops.incr();
            }
            obs.kernel_cycles.record(r.cycles);
        }
        result
    }
}

/// Cached simulator metric handles (kernel-rate hot path: one relaxed load
/// gates the whole block above).
struct SimObs {
    kernels: &'static pka_obs::Counter,
    cycles: &'static pka_obs::Counter,
    instructions: &'static pka_obs::Counter,
    early_stops: &'static pka_obs::Counter,
    kernel_cycles: &'static pka_obs::Histogram,
}

fn sim_obs() -> &'static SimObs {
    static OBS: std::sync::OnceLock<SimObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| SimObs {
        kernels: pka_obs::counter("sim.kernels"),
        cycles: pka_obs::counter("sim.cycles"),
        instructions: pka_obs::counter("sim.instructions"),
        early_stops: pka_obs::counter("sim.early_stops"),
        kernel_cycles: pka_obs::histogram(
            "sim.kernel_cycles",
            &[
                10_000,
                100_000,
                1_000_000,
                10_000_000,
                100_000_000,
                1_000_000_000,
            ],
        ),
    })
}

// ---------------------------------------------------------------------------
// Engine internals.
// ---------------------------------------------------------------------------

const BARRIER_RELEASE_LATENCY: u64 = 6;
const BLOCK_DISPATCH_LATENCY: u64 = 10;
/// Modelled driver + dispatch overhead added to every kernel launch, as
/// Accel-Sim's launch latency does. Deliberately close to — but not equal
/// to — the silicon model's figure, so micro-kernel-dominated workloads
/// exhibit a realistic simulator-versus-silicon gap instead of a huge one.
const KERNEL_LAUNCH_OVERHEAD: u64 = 2_300;
/// Every DEP_EVERYth instruction of a warp truly depends on the previous
/// one and waits its full result latency; the rest issue back-to-back.
/// Calibrated against the analytical silicon model so that well-tuned
/// compute tiles (which real hardware executes with deep ILP) land near
/// their throughput roofline instead of their naive dependence chain.
const DEP_EVERY: u64 = 6;
/// Per-warp hot-region size for L1-local reuse, in 32 B sectors (2 KiB:
/// small enough that even short kernels re-touch it within their lifetime).
const HOT_SECTORS: u64 = 64;

#[derive(Debug)]
struct Warp {
    cursor: WarpCursor,
    block_slot: usize,
    stream: UnitStream,
    issued: u64,
    active: bool,
}

#[derive(Debug)]
struct BlockSlot {
    active: bool,
    block_id: u64,
    warps_done: u32,
    barrier_arrived: u32,
    barrier_waiting: Vec<usize>,
}

#[derive(Debug)]
struct Sm {
    warps: Vec<Warp>,
    blocks: Vec<BlockSlot>,
    /// Ready warps bucketed per block slot; issued oldest-block-first
    /// (greedy-then-oldest, the scheduling policy Accel-Sim models) by
    /// walking `slot_order`.
    ready: Vec<Vec<usize>>,
    /// Total warps across the `ready` buckets.
    ready_count: usize,
    /// Block slots in ascending-block-age order (a re-dispatched slot moves
    /// to the back).
    slot_order: Vec<usize>,
    /// Fast path: warps that become ready exactly next cycle (the common
    /// back-to-back issue case) skip the sleep heap entirely.
    pending_next: Vec<usize>,
    /// Warps waiting on latencies longer than one cycle.
    sleeping: BinaryHeap<Reverse<(u64, usize)>>,
    credits: [f64; InstClass::ALL.len()],
    l1: SetAssocCache,
}

struct Engine<'a> {
    config: &'a GpuConfig,
    options: &'a SimOptions,
    kernel: &'a KernelDescriptor,
    program: WarpProgram,
    warps_per_block: u32,
    blocks_total: u64,
    wave_blocks: u64,
    rates: [f64; InstClass::ALL.len()],
    latencies: [u64; InstClass::ALL.len()],
    /// Classes the kernel actually executes — the only credits worth
    /// refilling each cycle.
    active_classes: Vec<usize>,
    sms: Vec<Sm>,
    l2: SetAssocCache,
    icnt: Option<Interconnect>,
    dram: DramModel,
    next_block: u64,
    blocks_done: u64,
    cycle: u64,
    instructions: u64,
    warm_sectors: u64,
    ws_sectors: u64,
}

impl<'a> Engine<'a> {
    fn new(
        config: &'a GpuConfig,
        options: &'a SimOptions,
        kernel: &'a KernelDescriptor,
    ) -> Result<Self, SimError> {
        let occ = Occupancy::compute(kernel, config)?;
        let program = WarpProgram::from_descriptor(kernel);
        let warps_per_block = kernel.warps_per_block();
        let slots_per_sm = occ.blocks_per_sm() as usize;

        let mut rates = [0.0; InstClass::ALL.len()];
        let mut latencies = [0u64; InstClass::ALL.len()];
        let mut active_classes = Vec::new();
        for (i, &class) in InstClass::ALL.iter().enumerate() {
            rates[i] = warp_throughput(config, class);
            latencies[i] = base_latency(config, class) as u64;
            if kernel.count(class) > 0 && class != InstClass::Sync {
                active_classes.push(i);
            }
        }

        let sms = (0..config.num_sms())
            .map(|_| Sm {
                warps: Vec::new(),
                blocks: (0..slots_per_sm)
                    .map(|_| BlockSlot {
                        active: false,
                        block_id: 0,
                        warps_done: 0,
                        barrier_arrived: 0,
                        barrier_waiting: Vec::new(),
                    })
                    .collect(),
                ready: (0..slots_per_sm).map(|_| Vec::new()).collect(),
                ready_count: 0,
                slot_order: (0..slots_per_sm).collect(),
                pending_next: Vec::new(),
                sleeping: BinaryHeap::new(),
                credits: [0.0; InstClass::ALL.len()],
                l1: SetAssocCache::with_capacity(config.l1_bytes(), 4, 32),
            })
            .collect();

        let mut engine = Engine {
            config,
            options,
            kernel,
            program,
            warps_per_block,
            blocks_total: kernel.total_blocks(),
            wave_blocks: occ.wave_blocks(),
            rates,
            latencies,
            active_classes,
            sms,
            l2: SetAssocCache::with_capacity(config.l2_bytes(), 16, 32),
            icnt: options
                .interconnect
                .then(|| Interconnect::new(config)),
            dram: DramModel::new(config),
            next_block: 0,
            blocks_done: 0,
            cycle: 0,
            instructions: 0,
            // The kernel-wide warm region must be small enough relative to
            // the kernel's own traffic that its locality actually
            // materialises as L2 hits (a region larger than the access
            // count is all cold misses, whatever the locality knob says).
            warm_sectors: (config.l2_bytes() / 2 / 32)
                .min(kernel.working_set_bytes().max(32) / 32)
                .min(((kernel.total_global_sectors() / 8.0) as u64).max(2_048))
                .max(1),
            ws_sectors: (kernel.working_set_bytes() / 32).max(1),
        };

        // Pre-size warp slot arrays and perform the initial wave dispatch.
        for sm in 0..engine.sms.len() {
            let slots = slots_per_sm * warps_per_block as usize;
            engine.sms[sm].warps = (0..slots)
                .map(|_| Warp {
                    cursor: engine.program.cursor(),
                    block_slot: 0,
                    stream: UnitStream::new(0),
                    issued: 0,
                    active: false,
                })
                .collect();
            for slot in 0..slots_per_sm {
                engine.try_dispatch(sm, slot);
            }
        }
        Ok(engine)
    }

    /// Places the next pending block into `(sm, slot)` if any work remains.
    fn try_dispatch(&mut self, sm: usize, slot: usize) {
        if self.next_block >= self.blocks_total {
            self.sms[sm].blocks[slot].active = false;
            return;
        }
        let block_id = self.next_block;
        self.next_block += 1;
        let now = self.cycle;
        let wpb = self.warps_per_block as usize;
        let seed_base = self.kernel.seed();
        let sm_ref = &mut self.sms[sm];
        // The refilled slot now hosts the youngest resident block.
        if let Some(pos) = sm_ref.slot_order.iter().position(|&s| s == slot) {
            sm_ref.slot_order.remove(pos);
        }
        sm_ref.slot_order.push(slot);
        let b = &mut sm_ref.blocks[slot];
        b.active = true;
        b.block_id = block_id;
        b.warps_done = 0;
        b.barrier_arrived = 0;
        b.barrier_waiting.clear();
        for w in 0..wpb {
            let idx = slot * wpb + w;
            let warp = &mut sm_ref.warps[idx];
            warp.cursor = self.program.cursor();
            warp.block_slot = slot;
            // mix64 decorrelates the streams: without it, seeds that differ
            // by multiples of the splitmix64 increment would alias into one
            // shared sequence and every warp would touch the same addresses.
            warp.stream = UnitStream::new(mix64(
                seed_base ^ mix64(block_id) ^ (w as u64).rotate_left(17),
            ));
            warp.issued = 0;
            warp.active = true;
            sm_ref
                .sleeping
                .push(Reverse((now + BLOCK_DISPATCH_LATENCY + w as u64, idx)));
        }
    }

    /// Generates one sector address for a memory access of `warp`.
    fn gen_address(
        stream: &mut UnitStream,
        kernel: &KernelDescriptor,
        block_id: u64,
        warm_sectors: u64,
        ws_sectors: u64,
    ) -> (u64, bool) {
        // Returns (sector address, is_l1_candidate).
        let u = stream.next_f64();
        let l1p = kernel.l1_locality();
        let l2p = kernel.l2_locality();
        if u < l1p {
            // Per-block hot region: fits in L1 comfortably.
            let base = (block_id * HOT_SECTORS * 7) % ws_sectors;
            let s = base + stream.next_u64() % HOT_SECTORS;
            ((s % ws_sectors) * 32, true)
        } else if u < l1p + (1.0 - l1p) * l2p {
            // Kernel-wide warm region sized to (half) the L2.
            let s = stream.next_u64() % warm_sectors;
            (s * 32, false)
        } else {
            // Cold: anywhere in the working set.
            let s = stream.next_u64() % ws_sectors;
            (s * 32, false)
        }
    }

    fn run(mut self, monitor: &mut dyn SimMonitor) -> Result<KernelSimResult, SimError> {
        let interval = self.options.sample_interval;
        let mut series: Vec<IpcSample> = Vec::new();
        let mut last_sample_cycle = 0u64;
        let mut last_sample_insts = 0u64;
        let mut early_stop = false;

        'outer: while self.blocks_done < self.blocks_total {
            if self.cycle >= self.options.max_cycles {
                return Err(SimError::CycleBudgetExhausted {
                    max_cycles: self.options.max_cycles,
                });
            }

            let mut any_ready = false;
            for sm_idx in 0..self.sms.len() {
                self.wake(sm_idx);
                if self.sms[sm_idx].ready_count > 0 {
                    any_ready = true;
                    self.issue_cycle(sm_idx);
                }
            }

            // IPC sampling + monitor callback.
            if self.cycle >= last_sample_cycle + interval {
                let dc = self.cycle - last_sample_cycle;
                let di = self.instructions - last_sample_insts;
                let sample = IpcSample {
                    cycle: self.cycle,
                    ipc: di as f64 / dc as f64,
                    l2_miss_pct: self.l2.miss_rate_pct(),
                    dram_util_pct: self.dram.utilization_pct(self.cycle),
                };
                series.push(sample);
                last_sample_cycle = self.cycle;
                last_sample_insts = self.instructions;
                let ctx = SampleContext {
                    sample,
                    instructions: self.instructions,
                    blocks_completed: self.blocks_done,
                    blocks_total: self.blocks_total,
                    wave_blocks: self.wave_blocks,
                };
                if monitor.observe(&ctx) == SimControl::Stop {
                    early_stop = true;
                    break 'outer;
                }
            }

            if any_ready {
                self.cycle += 1;
            } else {
                // Nothing issued anywhere: jump to the next wake-up event.
                let pending = self.sms.iter().any(|sm| !sm.pending_next.is_empty());
                let next = if pending {
                    Some(self.cycle + 1)
                } else {
                    self.sms
                        .iter()
                        .filter_map(|sm| sm.sleeping.peek().map(|Reverse((t, _))| *t))
                        .min()
                };
                match next {
                    Some(t) => {
                        let jump = t.max(self.cycle + 1);
                        // Cap the jump so sampling cadence is preserved.
                        self.cycle = jump.min(last_sample_cycle + interval.max(1));
                    }
                    None => {
                        debug_assert!(
                            self.blocks_done >= self.blocks_total,
                            "deadlock: no runnable warps but blocks remain"
                        );
                        break;
                    }
                }
            }
        }

        let cycles = self.cycle.max(1) + KERNEL_LAUNCH_OVERHEAD;
        Ok(KernelSimResult {
            cycles,
            instructions: self.instructions,
            instructions_total: self.kernel.total_warp_instructions(),
            launch_overhead_cycles: KERNEL_LAUNCH_OVERHEAD,
            warp_ipc: self.instructions as f64 / cycles as f64,
            ipc_series: series,
            dram_util_pct: self.dram.utilization_pct(cycles),
            l2_miss_rate_pct: self.l2.miss_rate_pct(),
            l1_miss_rate_pct: {
                let (a, m) = self
                    .sms
                    .iter()
                    .fold((0u64, 0u64), |(a, m), sm| (a + sm.l1.accesses(), m + sm.l1.misses()));
                if a == 0 {
                    0.0
                } else {
                    m as f64 / a as f64 * 100.0
                }
            },
            blocks_completed: self.blocks_done,
            blocks_total: self.blocks_total,
            wave_blocks: self.wave_blocks,
            early_stop,
        })
    }

    /// Moves due sleepers (and the next-cycle fast-path batch) into their
    /// ready buckets.
    fn wake(&mut self, sm_idx: usize) {
        let now = self.cycle;
        let sm = &mut self.sms[sm_idx];
        let pending = std::mem::take(&mut sm.pending_next);
        for idx in pending {
            let slot = sm.warps[idx].block_slot;
            sm.ready[slot].push(idx);
            sm.ready_count += 1;
        }
        while let Some(Reverse((t, idx))) = sm.sleeping.peek().copied() {
            if t > now {
                break;
            }
            sm.sleeping.pop();
            let slot = sm.warps[idx].block_slot;
            sm.ready[slot].push(idx);
            sm.ready_count += 1;
        }
    }

    /// One SM's issue stage for the current cycle.
    fn issue_cycle(&mut self, sm_idx: usize) {
        // Refill per-class credits (only classes this kernel executes),
        // capping the surplus so idle pipes cannot bank an unbounded burst;
        // debt from oversized accesses drains first.
        {
            let sm = &mut self.sms[sm_idx];
            for &c in &self.active_classes {
                let rate = self.rates[c];
                sm.credits[c] = (sm.credits[c] + rate).min((rate * 2.0).max(2.0));
            }
        }

        let issue_width = self.config.issue_width() as usize;
        let mut issued = 0usize;
        // Greedy-then-oldest: walk slots oldest block first; warps that
        // stall on a structural hazard stay in their bucket for next cycle.
        let n_slots = self.sms[sm_idx].slot_order.len();
        'slots: for oi in 0..n_slots {
            let slot = self.sms[sm_idx].slot_order[oi];
            let mut i = 0;
            loop {
                if issued >= issue_width {
                    break 'slots;
                }
                let warp_idx = {
                    let bucket = &self.sms[sm_idx].ready[slot];
                    if i >= bucket.len() {
                        break;
                    }
                    bucket[i]
                };
                match self.try_issue(sm_idx, warp_idx) {
                    IssueOutcome::Issued => {
                        let sm = &mut self.sms[sm_idx];
                        sm.ready[slot].swap_remove(i);
                        sm.ready_count -= 1;
                        issued += 1;
                    }
                    IssueOutcome::Retired => {
                        let sm = &mut self.sms[sm_idx];
                        sm.ready[slot].swap_remove(i);
                        sm.ready_count -= 1;
                    }
                    IssueOutcome::Stalled => i += 1,
                }
            }
        }
    }

    fn try_issue(&mut self, sm_idx: usize, warp_idx: usize) -> IssueOutcome {
        let now = self.cycle;
        let class = {
            let sm = &self.sms[sm_idx];
            let warp = &sm.warps[warp_idx];
            match self.program.fetch(&warp.cursor) {
                Some(c) => c,
                None => {
                    // Warp retired.
                    self.retire_warp(sm_idx, warp_idx);
                    return IssueOutcome::Retired;
                }
            }
        };
        let class_idx = class.index();

        // Barriers bypass the credit system.
        if class == InstClass::Sync {
            self.arrive_barrier(sm_idx, warp_idx);
            return IssueOutcome::Issued;
        }

        // Credit check: memory operations consume credit proportional to
        // their sector count (the coalescer occupies the LDST pipe longer
        // for divergent accesses).
        let sectors = if class.is_global_memory() {
            let sm = &mut self.sms[sm_idx];
            let warp = &mut sm.warps[warp_idx];
            let c = self.kernel.coalescing_sectors();
            let base = c.floor() as u64;
            let frac = c - base as f64;
            base + if warp.stream.next_f64() < frac { 1 } else { 0 }
        } else {
            0
        };
        let cost = if class.is_global_memory() {
            (sectors as f64 / 4.0).max(0.25)
        } else {
            1.0
        };
        {
            // Leaky-bucket issue: a warp may issue while the class credit is
            // positive and drive it negative (so a 32-sector divergent access
            // still issues, then blocks the pipe for the cycles it deserves).
            let sm = &mut self.sms[sm_idx];
            if sm.credits[class_idx] <= 0.0 {
                return IssueOutcome::Stalled;
            }
            sm.credits[class_idx] -= cost;
        }

        // Determine when the warp can issue its next instruction.
        let mut result_at = now + self.latencies[class_idx];
        if class.is_global_memory() {
            let block_id = {
                let sm = &self.sms[sm_idx];
                let slot = sm.warps[warp_idx].block_slot;
                sm.blocks[slot].block_id
            };
            let mut worst = now + 1;
            for _ in 0..sectors.max(1) {
                let (addr, _) = {
                    let sm = &mut self.sms[sm_idx];
                    let warp = &mut sm.warps[warp_idx];
                    Self::gen_address(
                        &mut warp.stream,
                        self.kernel,
                        block_id,
                        self.warm_sectors,
                        self.ws_sectors,
                    )
                };
                let sm = &mut self.sms[sm_idx];
                let ready = if sm.l1.access(addr) {
                    now + self.latencies[class_idx]
                } else {
                    // An L1 miss crosses the interconnect; under the
                    // optional backpressure model it may queue at its L2
                    // slice before being serviced.
                    let queued = match self.icnt.as_mut() {
                        Some(icnt) => icnt.queue_delay(addr, now),
                        None => 0,
                    };
                    if self.l2.access(addr) {
                        now + queued + self.config.l2_latency_cycles() as u64
                    } else {
                        self.dram.request(addr, now + queued)
                    }
                };
                worst = worst.max(ready);
            }
            // Stores retire immediately; loads and atomics deliver data.
            result_at = match class {
                InstClass::StGlobal | InstClass::StLocal => now + 1,
                _ => worst,
            };
        }

        // Scoreboard: every DEP_EVERYth instruction waits for its result;
        // the rest are independent and dual-issue-friendly. Global loads
        // expose their full round-trip latency through the register file,
        // but shared-memory and arithmetic results in tuned kernels are
        // software-pipelined (double buffering), so their dependent wait is
        // shallow.
        let dep_wait = match class {
            InstClass::LdGlobal | InstClass::LdLocal | InstClass::AtomicGlobal => result_at,
            _ => result_at.min(now + 8),
        };
        let (next_issue_at, executed) = {
            let sm = &mut self.sms[sm_idx];
            let warp = &mut sm.warps[warp_idx];
            warp.issued += 1;
            let dependent = warp.issued.is_multiple_of(DEP_EVERY);
            self.program.advance(&mut warp.cursor);
            (
                if dependent { dep_wait.max(now + 1) } else { now + 1 },
                warp.cursor.executed(),
            )
        };
        let _ = executed;
        self.instructions += 1;

        let sm = &mut self.sms[sm_idx];
        if next_issue_at <= now + 1 {
            sm.pending_next.push(warp_idx);
        } else {
            sm.sleeping.push(Reverse((next_issue_at, warp_idx)));
        }
        IssueOutcome::Issued
    }

    fn arrive_barrier(&mut self, sm_idx: usize, warp_idx: usize) {
        self.instructions += 1;
        let now = self.cycle;
        let release: Option<Vec<usize>> = {
            let sm = &mut self.sms[sm_idx];
            let warp = &mut sm.warps[warp_idx];
            warp.issued += 1;
            self.program.advance(&mut warp.cursor);
            let slot = warp.block_slot;
            let block = &mut sm.blocks[slot];
            block.barrier_arrived += 1;
            block.barrier_waiting.push(warp_idx);
            if block.barrier_arrived == self.warps_per_block {
                block.barrier_arrived = 0;
                Some(std::mem::take(&mut block.barrier_waiting))
            } else {
                None
            }
        };
        if let Some(waiting) = release {
            let sm = &mut self.sms[sm_idx];
            for w in waiting {
                sm.sleeping.push(Reverse((now + BARRIER_RELEASE_LATENCY, w)));
            }
        }
    }

    fn retire_warp(&mut self, sm_idx: usize, warp_idx: usize) {
        let finished_slot: Option<usize> = {
            let sm = &mut self.sms[sm_idx];
            let warp = &mut sm.warps[warp_idx];
            if !warp.active {
                return;
            }
            warp.active = false;
            let slot = warp.block_slot;
            let block = &mut sm.blocks[slot];
            block.warps_done += 1;
            (block.warps_done == self.warps_per_block).then_some(slot)
        };
        if let Some(slot) = finished_slot {
            self.blocks_done += 1;
            self.try_dispatch(sm_idx, slot);
        }
    }
}

enum IssueOutcome {
    Issued,
    Stalled,
    Retired,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> GpuConfig {
        GpuConfig::builder("tiny4")
            .num_sms(4)
            .build()
            .expect("valid config")
    }

    fn kernel(blocks: u32, fp32: u32, loads: u32) -> KernelDescriptor {
        KernelDescriptor::builder("k")
            .grid_blocks(blocks)
            .block_threads(64)
            .fp32_per_thread(fp32)
            .global_loads_per_thread(loads)
            .build()
            .unwrap()
    }

    #[test]
    fn completes_and_counts_every_instruction() {
        let sim = Simulator::new(tiny_config(), SimOptions::default());
        let k = kernel(16, 100, 10);
        let r = sim.run_kernel(&k).unwrap();
        assert_eq!(r.blocks_completed, 16);
        assert!(!r.early_stop);
        assert_eq!(r.instructions, k.total_warp_instructions());
        assert!(r.cycles > 0);
        assert!(r.warp_ipc > 0.0);
    }

    #[test]
    fn deterministic() {
        let sim = Simulator::new(tiny_config(), SimOptions::default());
        let k = kernel(8, 200, 8);
        let a = sim.run_kernel(&k).unwrap();
        let b = sim.run_kernel(&k).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_blocks_take_longer() {
        let sim = Simulator::new(tiny_config(), SimOptions::default());
        let small = sim.run_kernel(&kernel(8, 100, 4)).unwrap();
        let big = sim.run_kernel(&kernel(64, 100, 4)).unwrap();
        assert!(big.cycles > small.cycles);
    }

    #[test]
    fn memory_bound_kernel_has_high_dram_util() {
        let sim = Simulator::new(tiny_config(), SimOptions::default());
        let mem = KernelDescriptor::builder("mem")
            .grid_blocks(64)
            .block_threads(128)
            .fp32_per_thread(2)
            .global_loads_per_thread(48)
            .l1_locality(0.02)
            .l2_locality(0.05)
            .working_set_bytes(256 << 20)
            .coalescing_sectors(16.0)
            .build()
            .unwrap();
        let compute = kernel(64, 400, 2);
        let rm = sim.run_kernel(&mem).unwrap();
        let rc = sim.run_kernel(&compute).unwrap();
        assert!(rm.dram_util_pct > rc.dram_util_pct);
        assert!(rm.l2_miss_rate_pct > 50.0, "{}", rm.l2_miss_rate_pct);
        assert!(rm.warp_ipc < rc.warp_ipc);
    }

    #[test]
    fn cache_friendly_kernel_mostly_hits() {
        let sim = Simulator::new(tiny_config(), SimOptions::default());
        let k = KernelDescriptor::builder("hot")
            .grid_blocks(16)
            .block_threads(64)
            .fp32_per_thread(50)
            .global_loads_per_thread(100)
            .l1_locality(0.9)
            .l2_locality(0.9)
            .working_set_bytes(1 << 20)
            .build()
            .unwrap();
        let r = sim.run_kernel(&k).unwrap();
        assert!(r.l1_miss_rate_pct < 45.0, "{}", r.l1_miss_rate_pct);
    }

    #[test]
    fn barrier_kernel_completes() {
        let sim = Simulator::new(tiny_config(), SimOptions::default());
        let k = KernelDescriptor::builder("sync")
            .grid_blocks(8)
            .block_threads(128)
            .fp32_per_thread(60)
            .shared_loads_per_thread(10)
            .syncs_per_thread(4)
            .build()
            .unwrap();
        let r = sim.run_kernel(&k).unwrap();
        assert_eq!(r.blocks_completed, 8);
        assert_eq!(r.instructions, k.total_warp_instructions());
    }

    #[test]
    fn monitor_can_stop_early_and_projection_extends() {
        let sim = Simulator::new(tiny_config(), SimOptions::default());
        let k = kernel(128, 300, 8);
        let full = sim.run_kernel(&k).unwrap();
        // Stop after the first wave has drained (the paper's wave constraint
        // exists precisely because projecting before then is unreliable).
        let mut stopper = crate::monitor::MaxCyclesMonitor::new(full.cycles * 6 / 10);
        let partial = sim.run_kernel_monitored(&k, &mut stopper).unwrap();
        assert!(partial.early_stop);
        assert!(partial.cycles < full.cycles);
        assert!(partial.blocks_completed < partial.blocks_total);
        let projected = partial.projected_total_cycles();
        let err = (projected as f64 - full.cycles as f64).abs() / full.cycles as f64;
        assert!(err < 0.5, "projection error {err}");
    }

    #[test]
    fn instruction_budget_monitor_stops() {
        let sim = Simulator::new(tiny_config(), SimOptions::default());
        let k = kernel(128, 300, 8);
        let mut m = crate::monitor::MaxInstructionsMonitor::new(10_000);
        let r = sim.run_kernel_monitored(&k, &mut m).unwrap();
        assert!(r.early_stop);
        assert!(r.instructions >= 10_000);
        assert!(r.instructions < k.total_warp_instructions());
    }

    #[test]
    fn zero_sample_interval_is_rejected_not_panicked() {
        let err = SimOptions::default().with_sample_interval(0).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidOption {
                option: "sample_interval",
                ..
            }
        ));
        assert!(err.to_string().contains("sample_interval"));
        // A rejected value leaves nothing half-set: the builder is consumed,
        // and any positive interval still goes through.
        let opts = SimOptions::default().with_sample_interval(1).unwrap();
        assert_eq!(opts.sample_interval(), 1);
    }

    #[test]
    fn ipc_series_is_sampled() {
        let sim = Simulator::new(
            tiny_config(),
            SimOptions::default().with_sample_interval(100).unwrap(),
        );
        let r = sim.run_kernel(&kernel(32, 200, 8)).unwrap();
        assert!(!r.ipc_series.is_empty());
        for w in r.ipc_series.windows(2) {
            assert!(w[1].cycle > w[0].cycle);
        }
        assert!(r.ipc_series.iter().all(|s| s.ipc >= 0.0));
    }

    #[test]
    fn cycle_budget_errors_out() {
        let sim = Simulator::new(tiny_config(), SimOptions::default().with_max_cycles(50));
        let err = sim.run_kernel(&kernel(128, 5000, 50)).unwrap_err();
        assert!(matches!(err, SimError::CycleBudgetExhausted { .. }));
    }

    #[test]
    fn unlaunchable_kernel_is_gpu_error() {
        let sim = Simulator::new(tiny_config(), SimOptions::default());
        let k = KernelDescriptor::builder("fat")
            .grid_blocks(1)
            .block_threads(1024)
            .regs_per_thread(255)
            .fp32_per_thread(1)
            .build()
            .unwrap();
        assert!(matches!(sim.run_kernel(&k), Err(SimError::Gpu(_))));
    }

    #[test]
    fn sub_warp_blocks_work() {
        let sim = Simulator::new(tiny_config(), SimOptions::default());
        let k = KernelDescriptor::builder("narrow")
            .grid_blocks(4)
            .block_threads(16)
            .fp32_per_thread(10)
            .build()
            .unwrap();
        let r = sim.run_kernel(&k).unwrap();
        assert_eq!(r.blocks_completed, 4);
    }

    #[test]
    fn interconnect_backpressure_slows_l2_heavy_kernels() {
        let k = KernelDescriptor::builder("l2heavy")
            .grid_blocks(64)
            .block_threads(128)
            .fp32_per_thread(4)
            .global_loads_per_thread(40)
            .l1_locality(0.0)
            .l2_locality(0.95)
            .working_set_bytes(1 << 20)
            .coalescing_sectors(8.0)
            .build()
            .unwrap();
        let base = Simulator::new(tiny_config(), SimOptions::default());
        let icnt = Simulator::new(
            tiny_config(),
            SimOptions::default().with_interconnect(true),
        );
        let a = base.run_kernel(&k).unwrap();
        let b = icnt.run_kernel(&k).unwrap();
        // Backpressure must not make the kernel meaningfully faster; minor
        // reordering effects can move cycles a hair in either direction on
        // a lightly-loaded crossbar.
        assert!(
            b.cycles as f64 >= a.cycles as f64 * 0.98,
            "{} << {}",
            b.cycles,
            a.cycles
        );
        // Results stay complete and deterministic either way.
        assert_eq!(b.blocks_completed, b.blocks_total);
        assert_eq!(icnt.run_kernel(&k).unwrap(), b);
    }

    #[test]
    fn interconnect_is_off_by_default() {
        assert!(!SimOptions::default().interconnect());
        assert!(SimOptions::default().with_interconnect(true).interconnect());
    }

    #[test]
    fn ipc_respects_issue_bound() {
        let sim = Simulator::new(tiny_config(), SimOptions::default());
        let r = sim.run_kernel(&kernel(64, 500, 0)).unwrap();
        let peak = 4.0 * 4.0; // 4 SMs x issue width 4
        assert!(r.warp_ipc <= peak, "{}", r.warp_ipc);
    }
}
