/// A set-associative cache model with true LRU replacement, operating on
/// 32-byte sector addresses.
///
/// Used for both the per-SM L1 slices and the shared L2 of the timing
/// simulator. Tags are probed per access; this is a *functional* hit/miss
/// model (no MSHR merging), which is the fidelity level the PKA methodology
/// needs — miss rates and the resulting latency/bandwidth pressure.
///
/// # Examples
///
/// ```
/// use pka_sim::SetAssocCache;
///
/// let mut cache = SetAssocCache::new(1024, 4, 32);
/// assert!(!cache.access(0x1000)); // cold miss
/// assert!(cache.access(0x1000)); // now resident
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Per-line logical timestamp for LRU.
    stamps: Vec<u64>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache with `sets × ways` lines of `line_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or `line_bytes` is not a power of
    /// two.
    pub fn new(sets: usize, ways: usize, line_bytes: u64) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have sets and ways");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Builds a cache of `capacity_bytes` with the given associativity and
    /// line size (sets derived; capacity is rounded down to a whole number
    /// of sets, minimum one).
    pub fn with_capacity(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        let lines = (capacity_bytes / line_bytes).max(ways as u64);
        let sets = (lines as usize / ways).max(1);
        Self::new(sets, ways, line_bytes)
    }

    /// Probes (and fills on miss) the line containing `addr`. Returns `true`
    /// on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) % self.sets;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];

        if let Some(way) = slots.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            return true;
        }
        self.misses += 1;
        // Fill into invalid or LRU way.
        let victim = match slots.iter().position(|&t| t == u64::MAX) {
            Some(w) => w,
            None => {
                let stamps = &self.stamps[base..base + self.ways];
                (0..self.ways)
                    .min_by_key(|&w| stamps[w])
                    .expect("ways > 0")
            }
        };
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Total probes so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in percent (0 when never accessed).
    pub fn miss_rate_pct(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64 * 100.0
        }
    }

    /// Invalidates all lines and resets statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.accesses = 0;
        self.misses = 0;
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * (1u64 << self.line_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "sets and ways")]
    fn zero_sets_panics() {
        let _ = SetAssocCache::new(0, 4, 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_line_size_panics() {
        let _ = SetAssocCache::new(16, 4, 48);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(16, 2, 32);
        assert!(!c.access(64));
        assert!(c.access(64));
        assert!(c.access(95)); // same 32B line as 64? 95/32 = 2, 64/32 = 2 -> same line
        assert_eq!(c.misses(), 1);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways: addresses 0, 512, 1024 conflict (sets=1).
        let mut c = SetAssocCache::new(1, 2, 32);
        c.access(0); // miss, fill
        c.access(512); // miss, fill
        c.access(0); // hit, refresh
        c.access(1024); // miss, evicts 512
        assert!(c.access(0), "0 was most recent, must survive");
        assert!(!c.access(512), "512 was LRU, must be gone");
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let mut c = SetAssocCache::with_capacity(32 * 1024, 4, 32);
        let lines = 512; // 16 KiB of 32B lines, half the capacity
        for pass in 0..3 {
            for i in 0..lines {
                let hit = c.access(i * 32);
                if pass > 0 {
                    assert!(hit, "line {i} should be resident on pass {pass}");
                }
            }
        }
    }

    #[test]
    fn streaming_thrashes() {
        let mut c = SetAssocCache::with_capacity(4 * 1024, 4, 32);
        // Touch 100x the capacity once; everything misses.
        for i in 0..12_800u64 {
            c.access(i * 32);
        }
        assert_eq!(c.miss_rate_pct(), 100.0);
    }

    #[test]
    fn capacity_round_trip() {
        let c = SetAssocCache::with_capacity(6 * 1024 * 1024, 16, 32);
        assert_eq!(c.capacity_bytes(), 6 * 1024 * 1024);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = SetAssocCache::new(4, 2, 32);
        c.access(0);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert!(!c.access(0), "reset must invalidate");
    }
}
