//! A cycle-level GPU timing simulator — the Accel-Sim stand-in for the
//! Principal Kernel Analysis reproduction.
//!
//! The paper evaluates PKA by integrating it into Accel-Sim and comparing
//! sampled simulation against silicon. This crate plays Accel-Sim's role: it
//! expands a [`KernelDescriptor`](pka_gpu::KernelDescriptor) into per-warp
//! instruction traces and runs them through a structural timing model —
//! warp schedulers with scoreboard-style dependence stalls, per-class
//! execution-pipe throughput, a real set-associative L1 (per SM) and shared
//! L2, a channelised DRAM bandwidth/latency model, wave-based thread-block
//! dispatch, and barrier synchronisation. Because the model is structural,
//! the instantaneous-IPC time series it produces exhibits the warmup ramps,
//! phase shifts and wave-boundary dips that *Principal Kernel Projection*
//! exploits; and because it is *not* the same model as the analytical
//! silicon executor, a realistic simulator-vs-silicon error emerges.
//!
//! Key types:
//!
//! * [`Simulator`] / [`SimOptions`] — configure and run kernels.
//! * [`KernelSimResult`] — cycles, instructions, the sampled IPC series,
//!   DRAM utilisation, L2 miss rate and block-completion state.
//! * [`SimMonitor`] — an online observer invoked at every IPC sample; PKA's
//!   stability detector and the 1-billion-instruction baseline both plug in
//!   here.
//! * [`cost`] — the wall-clock cost model used to *project* simulation
//!   times for workloads that would take years to actually run (Figures 1
//!   and 6).
//!
//! # Examples
//!
//! ```
//! use pka_gpu::{GpuConfig, KernelDescriptor};
//! use pka_sim::{SimOptions, Simulator};
//!
//! let sim = Simulator::new(GpuConfig::v100(), SimOptions::default());
//! let kernel = KernelDescriptor::builder("k")
//!     .grid_blocks(160)
//!     .block_threads(128)
//!     .fp32_per_thread(200)
//!     .global_loads_per_thread(8)
//!     .build()?;
//! let result = sim.run_kernel(&kernel)?;
//! assert!(result.cycles > 0);
//! assert_eq!(result.blocks_completed, 160);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod cost;
mod dram;
mod engine;
mod icnt;
mod monitor;
mod trace;

pub use cache::SetAssocCache;
pub use dram::DramModel;
pub use engine::{KernelSimResult, SimError, SimOptions, Simulator};
pub use icnt::Interconnect;
pub use monitor::{
    IpcSample, MaxCyclesMonitor, MaxInstructionsMonitor, NullMonitor, SampleContext, SimControl,
    SimMonitor,
};
pub use trace::{WarpCursor, WarpProgram};

// The PKA pipeline fans per-kernel simulations out across scoped threads,
// sharing one `Simulator` by reference. These assertions fail to compile if
// a future change (e.g. interior-mutable caches) silently loses
// thread-safety rather than surfacing it at the fan-out call sites.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Simulator>();
    assert_send_sync::<SimOptions>();
    assert_send_sync::<SimError>();
    assert_send_sync::<KernelSimResult>();
};
