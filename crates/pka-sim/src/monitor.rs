//! Online observation hooks: the mechanism through which Principal Kernel
//! Projection (and baselines like first-1B-instructions) watch a running
//! simulation and decide to stop it.

/// One instantaneous-IPC sample emitted by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpcSample {
    /// Cycle at which the sample was taken.
    pub cycle: u64,
    /// Warp instructions per cycle over the sampling interval.
    pub ipc: f64,
    /// L2 miss rate so far, percent.
    pub l2_miss_pct: f64,
    /// DRAM utilisation so far, percent.
    pub dram_util_pct: f64,
}

/// Everything a monitor can see at a sampling point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleContext {
    /// The new sample.
    pub sample: IpcSample,
    /// Warp instructions retired so far.
    pub instructions: u64,
    /// Thread blocks fully retired so far.
    pub blocks_completed: u64,
    /// Total thread blocks in the grid.
    pub blocks_total: u64,
    /// Thread blocks in one full wave at this kernel's occupancy.
    pub wave_blocks: u64,
}

/// A monitor's verdict at a sampling point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimControl {
    /// Keep simulating.
    Continue,
    /// Stop now; the caller will project the remainder.
    Stop,
}

/// An online observer of a running kernel simulation.
///
/// The engine calls [`observe`](SimMonitor::observe) once per IPC sampling
/// interval. Returning [`SimControl::Stop`] ends the kernel early; the
/// result then reports `early_stop = true` together with the completion
/// state needed for projection.
pub trait SimMonitor {
    /// Inspects one sampling point and decides whether to continue.
    fn observe(&mut self, ctx: &SampleContext) -> SimControl;
}

/// A monitor that never stops the simulation (full simulation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullMonitor;

impl SimMonitor for NullMonitor {
    fn observe(&mut self, _ctx: &SampleContext) -> SimControl {
        SimControl::Continue
    }
}

/// Stops once a total instruction budget is reached — the classic
/// "simulate the first N (often 1 billion) instructions" methodology the
/// paper compares against.
///
/// # Examples
///
/// ```
/// use pka_sim::MaxInstructionsMonitor;
///
/// let monitor = MaxInstructionsMonitor::new(1_000_000_000);
/// assert_eq!(monitor.budget(), 1_000_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxInstructionsMonitor {
    budget: u64,
}

impl MaxInstructionsMonitor {
    /// Stops after `budget` warp instructions.
    pub fn new(budget: u64) -> Self {
        Self { budget }
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

impl SimMonitor for MaxInstructionsMonitor {
    fn observe(&mut self, ctx: &SampleContext) -> SimControl {
        if ctx.instructions >= self.budget {
            SimControl::Stop
        } else {
            SimControl::Continue
        }
    }
}

/// Stops once a cycle budget is reached (a safety valve for tests and
/// exploratory runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxCyclesMonitor {
    budget: u64,
}

impl MaxCyclesMonitor {
    /// Stops after `budget` cycles.
    pub fn new(budget: u64) -> Self {
        Self { budget }
    }
}

impl SimMonitor for MaxCyclesMonitor {
    fn observe(&mut self, ctx: &SampleContext) -> SimControl {
        if ctx.sample.cycle >= self.budget {
            SimControl::Stop
        } else {
            SimControl::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cycle: u64, instructions: u64) -> SampleContext {
        SampleContext {
            sample: IpcSample {
                cycle,
                ipc: 1.0,
                l2_miss_pct: 0.0,
                dram_util_pct: 0.0,
            },
            instructions,
            blocks_completed: 0,
            blocks_total: 100,
            wave_blocks: 10,
        }
    }

    #[test]
    fn null_monitor_never_stops() {
        let mut m = NullMonitor;
        assert_eq!(m.observe(&ctx(u64::MAX, u64::MAX)), SimControl::Continue);
    }

    #[test]
    fn instruction_budget_stops_at_threshold() {
        let mut m = MaxInstructionsMonitor::new(1000);
        assert_eq!(m.observe(&ctx(1, 999)), SimControl::Continue);
        assert_eq!(m.observe(&ctx(2, 1000)), SimControl::Stop);
    }

    #[test]
    fn cycle_budget_stops_at_threshold() {
        let mut m = MaxCyclesMonitor::new(500);
        assert_eq!(m.observe(&ctx(499, 0)), SimControl::Continue);
        assert_eq!(m.observe(&ctx(500, 0)), SimControl::Stop);
    }
}
