//! An SM↔L2 interconnect (crossbar) backpressure model.
//!
//! By default the simulator charges a flat L2-hit latency, which folds the
//! *average* network-on-chip crossing into one constant — adequate for the
//! PKA experiments, which is why it is the default. Enabling the
//! interconnect model
//! ([`SimOptions::with_interconnect`](crate::SimOptions::with_interconnect))
//! adds what the constant cannot express: per-slice bandwidth limits and
//! the queueing delay that builds up when many SMs hammer the same L2
//! slice, at one 32-byte sector per slice per cycle (the V100's published
//! L2 sector throughput).
//!
//! The `icnt_backpressure` ablation in the benches quantifies the effect.

use pka_gpu::GpuConfig;

/// Crossbar + L2-slice service model.
///
/// Requests hash to a slice by sector address; each slice serves one
/// sector per cycle, and requests queue behind earlier arrivals on the
/// same slice.
///
/// # Examples
///
/// ```
/// use pka_gpu::GpuConfig;
/// use pka_sim::Interconnect;
///
/// let mut icnt = Interconnect::new(&GpuConfig::v100());
/// let first = icnt.queue_delay(0x40, 100);
/// assert_eq!(first, 0, "an idle slice serves immediately");
/// ```
#[derive(Debug, Clone)]
pub struct Interconnect {
    /// Cycle at which each L2 slice is next free.
    slice_busy: Vec<u64>,
    total_delay: u64,
    requests: u64,
}

impl Interconnect {
    /// Creates the model for `config` (one slice per DRAM channel, the
    /// usual pairing on Nvidia parts).
    pub fn new(config: &GpuConfig) -> Self {
        Self {
            slice_busy: vec![0; config.dram_channels() as usize],
            total_delay: 0,
            requests: 0,
        }
    }

    /// Registers one sector request arriving at `now`; returns the
    /// queueing delay (cycles the request waits before its slice serves
    /// it). The flat L2 latency is charged by the caller on top.
    pub fn queue_delay(&mut self, addr: u64, now: u64) -> u64 {
        let slice = (addr >> 5) as usize % self.slice_busy.len();
        let start = self.slice_busy[slice].max(now);
        self.slice_busy[slice] = start + 1;
        let delay = start - now;
        self.total_delay += delay;
        self.requests += 1;
        delay
    }

    /// Requests observed so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Mean queueing delay per request, cycles.
    pub fn mean_delay(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_delay as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_slices_serve_immediately() {
        let mut icnt = Interconnect::new(&GpuConfig::v100());
        for i in 0..32u64 {
            assert_eq!(icnt.queue_delay(i * 32, 0), 0, "sector {i}");
        }
        assert_eq!(icnt.mean_delay(), 0.0);
    }

    #[test]
    fn same_slice_requests_queue() {
        let mut icnt = Interconnect::new(&GpuConfig::v100());
        // The same address maps to the same slice every time.
        let d0 = icnt.queue_delay(0, 10);
        let d1 = icnt.queue_delay(0, 10);
        let d2 = icnt.queue_delay(0, 10);
        assert_eq!(d0, 0);
        assert_eq!(d1, 1);
        assert_eq!(d2, 2);
        assert!(icnt.mean_delay() > 0.0);
    }

    #[test]
    fn queues_drain_over_time() {
        let mut icnt = Interconnect::new(&GpuConfig::v100());
        for _ in 0..10 {
            icnt.queue_delay(0, 0);
        }
        // Much later, the slice is free again.
        assert_eq!(icnt.queue_delay(0, 1_000), 0);
    }

    #[test]
    fn slice_count_follows_config() {
        let small = GpuConfig::rtx2060();
        let icnt = Interconnect::new(&small);
        assert_eq!(icnt.slice_busy.len(), small.dram_channels() as usize);
    }
}
