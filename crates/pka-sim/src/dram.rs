use pka_gpu::GpuConfig;

/// A channelised DRAM bandwidth and latency model.
///
/// Each channel is a server with a deterministic per-sector service time
/// derived from the configured aggregate bandwidth; requests hash to a
/// channel by address and queue behind earlier requests on the same channel.
/// This reproduces the two behaviours the PKA evaluation cares about:
/// bandwidth saturation under memory-bound load (the "DRAM util" columns of
/// Table 4) and growing queueing latency near saturation.
///
/// # Examples
///
/// ```
/// use pka_gpu::GpuConfig;
/// use pka_sim::DramModel;
///
/// let mut dram = DramModel::new(&GpuConfig::v100());
/// let ready = dram.request(0x1000, 0);
/// assert!(ready > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    /// Cycle at which each channel becomes free.
    busy_until: Vec<u64>,
    /// Cycles one 32 B sector occupies a channel.
    service_cycles: f64,
    /// Fractional service remainder per channel (sub-cycle bandwidth).
    service_carry: Vec<f64>,
    latency_cycles: u64,
    busy_cycles: u64,
    sectors_served: u64,
}

impl DramModel {
    /// Creates the model for `config`.
    pub fn new(config: &GpuConfig) -> Self {
        let channels = config.dram_channels() as usize;
        // Aggregate: dram_sectors_per_cycle across all channels; one channel
        // serves 1/channels of that.
        let per_channel = config.dram_sectors_per_cycle() / channels as f64;
        Self {
            busy_until: vec![0; channels],
            service_cycles: 1.0 / per_channel,
            service_carry: vec![0.0; channels],
            latency_cycles: config.dram_latency_cycles() as u64,
            busy_cycles: 0,
            sectors_served: 0,
        }
    }

    /// Enqueues one 32 B sector request at cycle `now`; returns the cycle at
    /// which the data is available to the core.
    pub fn request(&mut self, addr: u64, now: u64) -> u64 {
        let ch = (addr >> 5) as usize % self.busy_until.len();
        let start = self.busy_until[ch].max(now);
        // Accumulate fractional service cycles so bandwidth is exact even
        // when a sector takes less than one cycle.
        let mut svc = self.service_cycles + self.service_carry[ch];
        let whole = svc.floor();
        self.service_carry[ch] = svc - whole;
        svc = whole;
        let done = start + svc as u64;
        self.busy_cycles += done - start;
        self.busy_until[ch] = done;
        self.sectors_served += 1;
        done + self.latency_cycles
    }

    /// Total channel-busy cycles accumulated.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Sectors served so far.
    pub fn sectors_served(&self) -> u64 {
        self.sectors_served
    }

    /// Bandwidth utilisation over `elapsed_cycles`, percent of peak.
    pub fn utilization_pct(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        let capacity = elapsed_cycles as f64 * self.busy_until.len() as f64;
        (self.busy_cycles as f64 / capacity * 100.0).min(100.0)
    }

    /// The earliest cycle at which any channel is free (used for
    /// time-skipping when all warps are stalled on memory).
    pub fn earliest_free(&self) -> u64 {
        self.busy_until.iter().copied().min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(&GpuConfig::v100())
    }

    #[test]
    fn uncontended_request_costs_latency() {
        let mut d = model();
        let ready = d.request(0, 100);
        assert!(ready >= 100 + 440, "{ready}");
        assert!(ready < 100 + 600);
    }

    #[test]
    fn same_channel_requests_queue() {
        let mut d = model();
        // Same address = same channel; hammer it.
        let mut last = 0;
        for _ in 0..1000 {
            let r = d.request(0, 0);
            assert!(r >= last);
            last = r;
        }
        // 1000 sectors on one channel at ~0.6 sectors/cycle/channel must
        // take far longer than the uncontended latency.
        assert!(last > 1000, "{last}");
    }

    #[test]
    fn spread_addresses_use_all_channels() {
        let mut serial = model();
        let mut spread = model();
        let mut serial_done = 0u64;
        let mut spread_done = 0u64;
        for i in 0..3200u64 {
            serial_done = serial_done.max(serial.request(0, 0));
            spread_done = spread_done.max(spread.request(i * 32, 0));
        }
        assert!(
            spread_done * 4 < serial_done,
            "spread {spread_done} vs serial {serial_done}"
        );
    }

    #[test]
    fn utilization_saturates_under_load() {
        let mut d = model();
        let mut horizon = 0u64;
        for i in 0..100_000u64 {
            horizon = horizon.max(d.request(i * 32, 0));
        }
        let busy_end = horizon - 440; // strip the final latency
        let util = d.utilization_pct(busy_end);
        assert!(util > 50.0, "{util}");
        assert!(util <= 100.0);
    }

    #[test]
    fn utilization_zero_without_traffic() {
        let d = model();
        assert_eq!(d.utilization_pct(1000), 0.0);
        assert_eq!(d.utilization_pct(0), 0.0);
    }

    #[test]
    fn bandwidth_matches_configuration() {
        // Serve N sectors as fast as possible and compare against the
        // configured sectors-per-cycle rate.
        let config = GpuConfig::v100();
        let mut d = DramModel::new(&config);
        let n = 200_000u64;
        let mut done = 0u64;
        for i in 0..n {
            done = done.max(d.request(i * 32, 0));
        }
        let cycles = (done - 440) as f64;
        let achieved = n as f64 / cycles;
        let peak = config.dram_sectors_per_cycle();
        assert!(
            (achieved - peak).abs() / peak < 0.15,
            "achieved {achieved} vs peak {peak}"
        );
    }
}
