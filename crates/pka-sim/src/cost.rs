//! The simulation wall-clock cost model.
//!
//! Figures 1 and 6 of the paper plot *projected* simulation times: nobody
//! ever ran the century-long simulations, they are extrapolated from the
//! simulator's measured throughput. This module pins the extrapolation
//! constants used across the workspace.
//!
//! Accel-Sim simulating a Volta-class configuration advances on the order
//! of a few hundred simulated core cycles per wall-clock second (the paper's
//! Figure 1 maps ~10-minute silicon runs to century-scale simulations, a
//! slowdown of roughly 5×10⁶ against a ~1.4 GHz part). We use 300
//! cycles/second, which reproduces the paper's bands: microsecond kernels
//! simulate in minutes-to-hours, 10-minute MLPerf runs project to centuries.

/// Simulated core cycles a detailed cycle-level simulator advances per
/// wall-clock second.
pub const SIM_CYCLES_PER_WALL_SECOND: f64 = 300.0;

/// Seconds in one hour.
pub const SECONDS_PER_HOUR: f64 = 3600.0;

/// Seconds in one (365-day) year.
pub const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * SECONDS_PER_HOUR;

/// Projected wall-clock seconds to simulate `cycles` core cycles.
///
/// # Examples
///
/// ```
/// use pka_sim::cost::projected_sim_seconds;
///
/// assert_eq!(projected_sim_seconds(300), 1.0);
/// ```
pub fn projected_sim_seconds(cycles: u64) -> f64 {
    cycles as f64 / SIM_CYCLES_PER_WALL_SECOND
}

/// Projected wall-clock hours to simulate `cycles` core cycles.
///
/// # Examples
///
/// ```
/// use pka_sim::cost::projected_sim_hours;
///
/// let hours = projected_sim_hours(300 * 3600);
/// assert!((hours - 1.0).abs() < 1e-12);
/// ```
pub fn projected_sim_hours(cycles: u64) -> f64 {
    projected_sim_seconds(cycles) / SECONDS_PER_HOUR
}

/// Formats a duration in seconds using the paper's Figure 1 bands
/// (µs / ms / s / h / day / week / month / year / decade / century).
///
/// # Examples
///
/// ```
/// use pka_sim::cost::format_duration;
///
/// assert_eq!(format_duration(0.25), "250.0 ms");
/// assert_eq!(format_duration(7200.0), "2.0 h");
/// ```
pub fn format_duration(seconds: f64) -> String {
    const DAY: f64 = 86_400.0;
    if seconds < 1e-3 {
        format!("{:.1} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.1} ms", seconds * 1e3)
    } else if seconds < SECONDS_PER_HOUR {
        format!("{:.1} s", seconds)
    } else if seconds < DAY {
        format!("{:.1} h", seconds / SECONDS_PER_HOUR)
    } else if seconds < 7.0 * DAY {
        format!("{:.1} days", seconds / DAY)
    } else if seconds < 30.0 * DAY {
        format!("{:.1} weeks", seconds / (7.0 * DAY))
    } else if seconds < SECONDS_PER_YEAR {
        format!("{:.1} months", seconds / (30.0 * DAY))
    } else if seconds < 10.0 * SECONDS_PER_YEAR {
        format!("{:.1} years", seconds / SECONDS_PER_YEAR)
    } else if seconds < 100.0 * SECONDS_PER_YEAR {
        format!("{:.1} decades", seconds / (10.0 * SECONDS_PER_YEAR))
    } else {
        format!("{:.1} centuries", seconds / (100.0 * SECONDS_PER_YEAR))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_reproduces_the_papers_bands() {
        // A 10-minute silicon run at 1.455 GHz...
        let cycles = (600.0 * 1.455e9) as u64;
        let sim = projected_sim_seconds(cycles);
        // ...projects to roughly a century of simulation.
        assert!(sim > 50.0 * SECONDS_PER_YEAR, "{sim}");
        assert!(sim < 500.0 * SECONDS_PER_YEAR, "{sim}");
    }

    #[test]
    fn microsecond_kernels_simulate_fast() {
        // A 100 us kernel (~145k cycles) should simulate within minutes.
        let cycles = (100e-6 * 1.455e9) as u64;
        let sim = projected_sim_seconds(cycles);
        assert!(sim < 3600.0, "{sim}");
    }

    #[test]
    fn duration_bands() {
        assert!(format_duration(5e-5).ends_with("us"));
        assert!(format_duration(30.0).ends_with(" s"));
        assert!(format_duration(3.0 * 86_400.0).contains("days"));
        assert!(format_duration(20.0 * 86_400.0).contains("weeks"));
        assert!(format_duration(100.0 * 86_400.0).contains("months"));
        assert!(format_duration(2.0 * SECONDS_PER_YEAR).contains("years"));
        assert!(format_duration(30.0 * SECONDS_PER_YEAR).contains("decades"));
        assert!(format_duration(500.0 * SECONDS_PER_YEAR).contains("centuries"));
    }
}
