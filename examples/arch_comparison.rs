//! The architect's use case (Section 5.3): does sampled simulation
//! preserve *relative* performance across architectures?
//!
//! ```text
//! cargo run --release --example arch_comparison
//! ```
//!
//! Selects principal kernels once on Volta, then re-runs those same
//! kernels on Turing and Ampere silicon — the cross-generation transfer
//! experiment — and finally reproduces the Figure 10 case study in
//! miniature: the predicted speedup of an 80-SM V100 over a 40-SM V100.

use principal_kernel_analysis::core::{Pka, PkaConfig};
use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::obs;
use principal_kernel_analysis::workloads::rodinia;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Set PKA_TRACE=<path> to record a pka.trace/v1 JSONL of the run.
    let trace = std::env::var_os("PKA_TRACE");
    if let Some(path) = &trace {
        obs::enable();
        obs::trace_to(std::path::Path::new(path))?;
    }
    let workload = rodinia::workloads()
        .into_iter()
        .find(|w| w.name() == "srad_v1")
        .expect("part of the Rodinia suite");

    println!("workload: {}", workload.name());

    // Select once, on Volta — the paper's protocol.
    let select_span = obs::span("example.select");
    let volta = Pka::new(GpuConfig::v100(), PkaConfig::default());
    let selection = volta.select_kernels(&workload)?;
    drop(select_span);
    println!("selected {} principal kernels on Volta\n", selection.k());

    println!("{:<10} {:>10} {:>10}", "GPU", "error[%]", "speedup");
    for gpu in [GpuConfig::v100(), GpuConfig::rtx2060(), GpuConfig::rtx3070()] {
        let pipeline = Pka::new(gpu, PkaConfig::default());
        let report = pipeline.silicon_report_for(&workload, &selection)?;
        println!(
            "{:<10} {:>10.1} {:>9.1}x",
            report.gpu, report.error_pct, report.speedup
        );
    }

    // Figure 10 in miniature: 80 vs 40 SMs, silicon truth vs PKA estimate.
    println!();
    let _scaling_span = obs::span("example.sm_scaling");
    let full = Pka::new(GpuConfig::v100(), PkaConfig::default());
    let half = Pka::new(GpuConfig::v100_half_sms(), PkaConfig::default());
    let silicon_full = full.profiler().silicon_run(&workload)?;
    let silicon_half = half.profiler().silicon_run(&workload)?;
    let silicon_speedup = silicon_half.total_cycles as f64 / silicon_full.total_cycles as f64;

    let full_report = full.evaluate_in_simulation(&workload, false)?;
    let half_report = half.evaluate_in_simulation(&workload, false)?;
    let pka_speedup =
        half_report.pka_projected_cycles as f64 / full_report.pka_projected_cycles as f64;

    println!("80-SM over 40-SM V100 speedup:");
    println!("  silicon: {silicon_speedup:.2}x");
    println!("  PKA:     {pka_speedup:.2}x");
    println!(
        "  |error|: {:.1}%",
        ((pka_speedup - silicon_speedup) / silicon_speedup * 100.0).abs()
    );
    drop(_scaling_span);
    if trace.is_some() {
        obs::close_trace()?;
    }
    Ok(())
}
