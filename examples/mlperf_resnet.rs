//! The headline result: making a *scaled* MLPerf workload simulable.
//!
//! ```text
//! cargo run --release --example mlperf_resnet
//! ```
//!
//! ResNet-50 inference launches tens of thousands of kernels; full
//! cycle-level simulation would take years. This example walks the exact
//! path the paper describes: check that detailed profiling is tractable
//! (for ResNet it is; for SSD/BERT/GNMT the two-level fallback kicks in
//! automatically), select principal kernels, simulate only those with PKP
//! stability-stopping, and project the whole application.

use principal_kernel_analysis::core::{Pka, PkaConfig};
use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::obs;
use principal_kernel_analysis::profile::Profiler;
use principal_kernel_analysis::sim::cost::{format_duration, projected_sim_seconds};
use principal_kernel_analysis::workloads::mlperf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Set PKA_TRACE=<path> to record a pka.trace/v1 JSONL of the run.
    let trace = std::env::var_os("PKA_TRACE");
    if let Some(path) = &trace {
        obs::enable();
        obs::trace_to(std::path::Path::new(path))?;
    }
    let workload = mlperf::workloads()
        .into_iter()
        .find(|w| w.name() == "mlperf_resnet50_64b_infer")
        .expect("part of the MLPerf suite");

    println!(
        "workload: {} ({} kernel launches)",
        workload.name(),
        workload.kernel_count()
    );

    // How bad is the problem? Project the cost of the naive approaches.
    let profiler = Profiler::new(GpuConfig::v100());
    let silicon = profiler.silicon_run(&workload)?;
    println!(
        "silicon runtime:          {}",
        format_duration(silicon.total_seconds)
    );
    println!(
        "full simulation would be: {}",
        format_duration(projected_sim_seconds(silicon.total_cycles))
    );
    let cost = profiler.profiling_cost(&workload);
    println!(
        "detailed profiling:       {} ({})",
        format_duration(cost.detailed_seconds()),
        if cost.detailed_is_intractable() {
            "intractable -> two-level"
        } else {
            "tractable"
        }
    );

    // The PKA pipeline.
    let pipeline_span = obs::span("example.pipeline");
    let pka = Pka::new(GpuConfig::v100(), PkaConfig::default());
    let selection = pka.select_kernels(&workload)?;
    println!();
    println!(
        "PKS folded {} launches into {} principal kernels:",
        workload.kernel_count(),
        selection.k()
    );
    for (i, group) in selection.groups().iter().enumerate() {
        let rep = workload.kernel(group.representative());
        println!(
            "  group {i:>2}: {:>7} launches, representative `{}` (kernel {})",
            group.count(),
            rep.name(),
            group.representative()
        );
    }

    let report = pka.evaluate_in_simulation(&workload, false)?;
    println!();
    println!(
        "PKA projection: {} cycles vs silicon {} cycles ({:.1}% error)",
        report.pka_projected_cycles, report.silicon_cycles, report.pka_error_pct
    );
    println!(
        "simulation cost: {} (PKA) instead of {} (full) -> {:.0}x reduction",
        format_duration(report.pka_hours * 3600.0),
        format_duration(report.fullsim_hours * 3600.0),
        report.pka_speedup()
    );
    drop(pipeline_span);
    if trace.is_some() {
        obs::close_trace()?;
    }
    Ok(())
}
