//! Quickstart: run Principal Kernel Analysis end-to-end on one workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Profiles Rodinia's `gauss_208` on the modelled V100, selects principal
//! kernels, simulates only those (stopping each at IPC stability), and
//! compares the projected application cycles against silicon and against
//! full simulation.
//!
//! Set `PKA_TRACE=<path>` to record a `pka.trace/v1` JSONL of the run
//! (convert with `pka trace export` and open it in Perfetto).

use principal_kernel_analysis::core::{Pka, PkaConfig};
use principal_kernel_analysis::obs;
use principal_kernel_analysis::gpu::GpuConfig;
use principal_kernel_analysis::sim::cost::format_duration;
use principal_kernel_analysis::workloads::rodinia;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = std::env::var_os("PKA_TRACE");
    if let Some(path) = &trace {
        obs::enable();
        obs::trace_to(std::path::Path::new(path))?;
    }
    let workload = rodinia::workloads()
        .into_iter()
        .find(|w| w.name() == "gauss_208")
        .expect("gauss_208 is part of the Rodinia suite");

    println!("workload: {} ({} kernel launches)", workload.name(), workload.kernel_count());

    let pka = Pka::new(GpuConfig::v100(), PkaConfig::default());

    // Step 1: silicon profiling + Principal Kernel Selection.
    let select_span = obs::span("example.select");
    let selection = pka.select_kernels(&workload)?;
    drop(select_span);
    println!(
        "PKS: {} groups selected (target error {:.0}%)",
        selection.k(),
        pka.config().pks().target_error_pct()
    );
    for (i, group) in selection.groups().iter().enumerate() {
        println!(
            "  group {i}: representative kernel {} stands in for {} launches",
            group.representative(),
            group.count()
        );
    }

    // Step 2: full evaluation in simulation (this workload is small enough
    // to also run the full-simulation baseline for comparison).
    let evaluate_span = obs::span("example.evaluate");
    let report = pka.evaluate_in_simulation(&workload, true)?;
    drop(evaluate_span);
    println!();
    println!("silicon reference:   {:>14} cycles", report.silicon_cycles);
    println!(
        "full simulation:     {:>14} cycles ({:.1}% vs silicon, {} of simulation)",
        report.fullsim_cycles.expect("full sim ran"),
        report.sim_error_pct.expect("full sim ran"),
        format_duration(report.fullsim_hours * 3600.0),
    );
    println!(
        "PKS only:            {:>14} cycles ({:.1}% vs silicon, {} of simulation)",
        report.pks_projected_cycles,
        report.pks_error_pct,
        format_duration(report.pks_hours * 3600.0),
    );
    println!(
        "PKA (PKS + PKP):     {:>14} cycles ({:.1}% vs silicon, {} of simulation)",
        report.pka_projected_cycles,
        report.pka_error_pct,
        format_duration(report.pka_hours * 3600.0),
    );
    println!();
    println!(
        "simulation-time speedup: PKS {:.1}x, PKA {:.1}x",
        report.pks_speedup(),
        report.pka_speedup()
    );
    if trace.is_some() {
        obs::close_trace()?;
    }
    Ok(())
}
