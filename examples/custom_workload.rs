//! Bring your own workload: define kernels, build a launch stream, and run
//! the whole PKA pipeline on it.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! Models a hypothetical iterative solver: a compute-heavy update kernel
//! and a memory-bound halo exchange alternating for 300 timesteps, plus a
//! one-off reduction at the end. PKA should discover the structure (two or
//! three groups) without being told anything about it.

use principal_kernel_analysis::core::{Pka, PkaConfig, PkpConfig, PksConfig};
use principal_kernel_analysis::gpu::{GpuConfig, KernelDescriptor};
use principal_kernel_analysis::obs;
use principal_kernel_analysis::workloads::{KernelTemplate, Suite, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Set PKA_TRACE=<path> to record a pka.trace/v1 JSONL of the run.
    let trace = std::env::var_os("PKA_TRACE");
    if let Some(path) = &trace {
        obs::enable();
        obs::trace_to(std::path::Path::new(path))?;
    }
    // 1. Describe the kernels declaratively.
    let update = KernelDescriptor::builder("solver_update")
        .grid_blocks(640)
        .block_threads(256)
        .fp32_per_thread(320)
        .global_loads_per_thread(12)
        .global_stores_per_thread(4)
        .shared_loads_per_thread(24)
        .syncs_per_thread(2)
        .shared_mem_per_block(8 * 1024)
        .l1_locality(0.6)
        .l2_locality(0.7)
        .build()?;
    let halo = KernelDescriptor::builder("halo_exchange")
        .grid_blocks(160)
        .block_threads(256)
        .int_per_thread(20)
        .global_loads_per_thread(32)
        .global_stores_per_thread(16)
        .l1_locality(0.05)
        .l2_locality(0.2)
        .working_set_bytes(512 << 20)
        .build()?;
    let reduce = KernelDescriptor::builder("residual_norm")
        .grid_blocks(80)
        .block_threads(256)
        .fp32_per_thread(48)
        .global_loads_per_thread(16)
        .global_atomics_per_thread(1)
        .build()?;

    // 2. Assemble the launch stream: 300 timesteps of (update, halo), then
    //    the final reduction.
    let workload = Workload::builder("custom_solver", Suite::Polybench)
        .cycle(
            vec![KernelTemplate::new(update), KernelTemplate::new(halo)],
            300,
        )
        .run(KernelTemplate::new(reduce), 1)
        .build();
    println!(
        "workload: {} ({} kernel launches)",
        workload.name(),
        workload.kernel_count()
    );

    // 3. Run PKA, tuning the two user-facing knobs explicitly.
    let config = PkaConfig::default()
        .with_pks(PksConfig::default().with_target_error_pct(5.0))
        .with_pkp(PkpConfig::default().with_threshold(0.25));
    let pka = Pka::new(GpuConfig::v100(), config);

    let select_span = obs::span("example.select");
    let selection = pka.select_kernels(&workload)?;
    drop(select_span);
    println!("PKS discovered {} groups:", selection.k());
    for group in selection.groups() {
        let rep = workload.kernel(group.representative());
        println!(
            "  `{}` x {} (representative: kernel {})",
            rep.name(),
            group.count(),
            group.representative()
        );
    }

    let evaluate_span = obs::span("example.evaluate");
    let report = pka.evaluate_in_simulation(&workload, true)?;
    drop(evaluate_span);
    println!();
    println!(
        "PKA error vs silicon: {:.1}% (full simulation: {:.1}%)",
        report.pka_error_pct,
        report.sim_error_pct.expect("full sim ran")
    );
    println!(
        "simulation reduced {:.0}x ({:.2} h -> {:.3} h projected)",
        report.pka_speedup(),
        report.fullsim_hours,
        report.pka_hours
    );
    if trace.is_some() {
        obs::close_trace()?;
    }
    Ok(())
}
